// Package workload defines the execution abstraction shared by the web
// browser rendering engine and the co-scheduled kernels: a stream of
// Segments, each describing a burst of computation (instructions) and
// the cache-line touches it makes over a memory region with a
// characteristic access pattern. The SoC simulator consumes segments,
// charging compute time against the core clock and replaying the line
// touches through the cache hierarchy.
package workload

import (
	"errors"
	"fmt"
)

// LineBytes is the cache-line granularity segments are expressed in.
const LineBytes = 64

// Pattern describes how a segment touches its footprint.
type Pattern int

const (
	// Sequential walks lines in address order (streaming).
	Sequential Pattern = iota
	// Strided jumps a fixed number of lines between touches.
	Strided
	// Random touches uniformly random lines in the footprint.
	Random
	// PointerChase follows a data-dependent permutation of the
	// footprint's lines (worst locality, serialized misses).
	PointerChase
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case PointerChase:
		return "pointer-chase"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Segment is one burst of work.
type Segment struct {
	// Kind labels the generating phase ("layout", "bfs-level", ...).
	Kind string
	// Ops is the number of instructions in the burst.
	Ops int64
	// Lines is the number of cache-line touches presented to the
	// hierarchy while executing the burst.
	Lines int64
	// FootprintBytes is the size of the region the touches fall in.
	FootprintBytes int64
	// Pattern is the address pattern of the touches.
	Pattern Pattern
	// Base is the region's base address (distinct per data structure
	// so different structures do not alias in the caches).
	Base uint64
	// StrideLines is the line stride for Strided patterns (>=1).
	StrideLines int64
	// IPC is the core's instructions-per-cycle when not stalled on
	// memory for this burst (workload-dependent; <=0 means default).
	IPC float64
	// IdleNs is wall-clock idle time after the burst (frame gaps,
	// synchronization waits); it lowers the core's utilization.
	IdleNs int64
}

// Validate reports structural problems in a segment.
func (s Segment) Validate() error {
	if s.Ops < 0 || s.Lines < 0 || s.IdleNs < 0 {
		return errors.New("workload: negative ops, lines, or idle time")
	}
	if s.Lines > 0 && s.FootprintBytes < LineBytes {
		return fmt.Errorf("workload: segment %q touches lines but footprint %d < one line", s.Kind, s.FootprintBytes)
	}
	if s.Pattern == Strided && s.StrideLines <= 0 {
		return errors.New("workload: strided segment requires StrideLines >= 1")
	}
	return nil
}

// Source produces a stream of segments. Next returns ok=false when the
// workload has completed; infinite workloads (co-runners) never do.
type Source interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next segment.
	Next() (Segment, bool)
	// Reset restarts the stream from the beginning.
	Reset()
}

// RefGen deterministically generates the line-touch addresses of one
// segment. The i-th call to Next after construction yields the address
// of the i-th (possibly sampled) touch.
type RefGen struct {
	seg    Segment
	lines  uint64 // footprint size in lines
	pos    uint64 // sequential/strided position
	lcg    uint64 // random/pointer-chase state
	stride uint64
}

// NewRefGen builds a generator for seg; seed decorrelates random
// patterns across segments. Sequential and strided walks start at
// position 0; use NewRefGenAt to continue a walk across segments.
func NewRefGen(seg Segment, seed uint64) *RefGen {
	return NewRefGenAt(seg, seed, 0)
}

// NewRefGenAt builds a generator whose sequential/strided walk begins
// at the given position, so consecutive segments over the same region
// keep advancing through it instead of retouching its head.
func NewRefGenAt(seg Segment, seed uint64, startPos uint64) *RefGen {
	g := &RefGen{}
	g.Reinit(seg, seed, startPos)
	return g
}

// Reinit re-targets an existing generator at a new segment, exactly as
// NewRefGenAt would but without allocating — the simulator's quantum
// loop keeps one RefGen per core and reinitializes it per segment.
func (g *RefGen) Reinit(seg Segment, seed uint64, startPos uint64) {
	lines := uint64(seg.FootprintBytes) / LineBytes
	if lines == 0 {
		lines = 1
	}
	stride := uint64(1)
	if seg.Pattern == Strided && seg.StrideLines > 0 {
		stride = uint64(seg.StrideLines)
	}
	*g = RefGen{
		seg:    seg,
		lines:  lines,
		pos:    startPos,
		lcg:    seed*2862933555777941757 + 3037000493,
		stride: stride,
	}
}

// Pos returns the current sequential/strided walk position.
func (g *RefGen) Pos() uint64 { return g.pos }

// Next returns the byte address (line-aligned) of the next touch.
func (g *RefGen) Next() uint64 {
	var lineIdx uint64
	switch g.seg.Pattern {
	case Sequential:
		lineIdx = g.pos % g.lines
		g.pos++
	case Strided:
		lineIdx = (g.pos * g.stride) % g.lines
		g.pos++
	case Random:
		g.lcg = g.lcg*6364136223846793005 + 1442695040888963407
		lineIdx = (g.lcg >> 17) % g.lines
	case PointerChase:
		// Full-period LCG over the footprint: every line visited once
		// per cycle, in an address-scrambled order — a deterministic
		// stand-in for chasing a shuffled linked list.
		g.lcg = g.lcg*6364136223846793005 + 1442695040888963407
		lineIdx = (g.lcg >> 11) % g.lines
	default:
		lineIdx = 0
	}
	return g.seg.Base + lineIdx*LineBytes
}

// FillBlock fills dst with the addresses of the next len(dst) touches,
// exactly as len(dst) successive Next calls would. The switch on the
// access pattern is hoisted out of the per-touch loop and the
// sequential/strided walks replace the per-touch modulo with an
// incremental wrap, so bulk generation into a caller-owned scratch
// buffer is several times cheaper than one call per reference.
//
//dora:hotpath
func (g *RefGen) FillBlock(dst []uint64) {
	base, lines := g.seg.Base, g.lines
	switch g.seg.Pattern {
	case Sequential:
		p := g.pos % lines
		for i := range dst {
			dst[i] = base + p*LineBytes
			p++
			if p == lines {
				p = 0
			}
		}
		g.pos += uint64(len(dst))
	case Strided:
		// p tracks (pos*stride) % lines incrementally: adding the
		// reduced stride and wrapping once is equivalent because both
		// summands are already < lines.
		p := (g.pos * g.stride) % lines
		step := g.stride % lines
		for i := range dst {
			dst[i] = base + p*LineBytes
			p += step
			if p >= lines {
				p -= lines
			}
		}
		g.pos += uint64(len(dst))
	case Random:
		lcg := g.lcg
		for i := range dst {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			dst[i] = base + ((lcg>>17)%lines)*LineBytes
		}
		g.lcg = lcg
	case PointerChase:
		lcg := g.lcg
		for i := range dst {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			dst[i] = base + ((lcg>>11)%lines)*LineBytes
		}
		g.lcg = lcg
	default:
		for i := range dst {
			dst[i] = base
		}
	}
}

// Skip advances the generator by n touches without producing their
// addresses, exactly as n discarded Next calls would. Sequential and
// strided walks advance their position directly; the LCG-backed
// patterns jump the generator state in O(log n) by composing the
// affine update map with itself (x -> a*x + c applied n times is
// x -> a^n*x + c*(a^(n-1) + ... + 1), both computable by repeated
// squaring in the same mod-2^64 arithmetic the per-touch path uses).
// The sampled-fidelity fast-forward path uses Skip to keep reference
// streams bit-aligned with exact mode across extrapolated slices.
func (g *RefGen) Skip(n uint64) {
	switch g.seg.Pattern {
	case Sequential, Strided:
		g.pos += n
	case Random, PointerChase:
		const (
			mulA = 6364136223846793005
			addC = 1442695040888963407
		)
		// Compose (a, c) where step(x) = a*x + c, n times.
		var accA, accC uint64 = 1, 0
		stepA, stepC := uint64(mulA), uint64(addC)
		for n > 0 {
			if n&1 == 1 {
				// acc = step ∘ acc : x -> stepA*(accA*x + accC) + stepC
				accA, accC = stepA*accA, stepA*accC+stepC
			}
			stepA, stepC = stepA*stepA, stepA*stepC+stepC
			n >>= 1
		}
		g.lcg = accA*g.lcg + accC
	}
}

// sliceSource replays a fixed segment list once.
type sliceSource struct {
	name string
	segs []Segment
	pos  int
}

// FromSegments wraps a fixed segment list as a finite Source.
func FromSegments(name string, segs []Segment) Source {
	return &sliceSource{name: name, segs: segs}
}

func (s *sliceSource) Name() string { return s.name }

func (s *sliceSource) Next() (Segment, bool) {
	if s.pos >= len(s.segs) {
		return Segment{}, false
	}
	seg := s.segs[s.pos]
	s.pos++
	return seg, true
}

func (s *sliceSource) Reset() { s.pos = 0 }

// loopSource repeats an underlying finite source forever.
type loopSource struct {
	inner Source
}

// Loop returns a Source that restarts inner whenever it completes —
// used for co-scheduled applications that run for the whole experiment.
func Loop(inner Source) Source { return &loopSource{inner: inner} }

func (l *loopSource) Name() string { return l.inner.Name() }

func (l *loopSource) Next() (Segment, bool) {
	if seg, ok := l.inner.Next(); ok {
		return seg, true
	}
	l.inner.Reset()
	seg, ok := l.inner.Next()
	return seg, ok // ok=false only if inner is empty
}

func (l *loopSource) Reset() { l.inner.Reset() }

// Totals sums ops and line touches across a finite source (consumes
// it; callers Reset afterwards if reuse is needed).
func Totals(s Source) (ops, lines int64) {
	for {
		seg, ok := s.Next()
		if !ok {
			return
		}
		ops += seg.Ops
		lines += seg.Lines
	}
}

// Idle returns a Source that produces nothing — a parked core.
func Idle() Source { return FromSegments("idle", nil) }
