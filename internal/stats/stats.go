// Package stats provides the small set of descriptive statistics used
// throughout the DORA reproduction: means, spreads, error metrics and
// empirical CDFs. All functions operate on float64 slices and are
// deliberately allocation-light so they can be called inside simulation
// loops.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful
// result for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice; callers that need to distinguish use MeanErr.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanErr is Mean with an explicit empty-sample error.
func MeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Mean(xs), nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs (zero for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MSE returns the mean squared error between predictions and targets.
// The slices must have equal nonzero length.
func MSE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// MAPE returns the mean absolute percentage error of pred against obs,
// expressed as a fraction (0.025 == 2.5%). Observations equal to zero
// are skipped; if all observations are zero it returns ErrEmpty.
func MAPE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, errors.New("stats: length mismatch")
	}
	s, n := 0.0, 0
	for i := range pred {
		if obs[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - obs[i]) / obs[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return s / float64(n), nil
}

// AbsRelErrors returns |pred-obs|/|obs| element-wise, skipping zero
// observations.
func AbsRelErrors(pred, obs []float64) []float64 {
	out := make([]float64, 0, len(pred))
	for i := range pred {
		if i >= len(obs) || obs[i] == 0 {
			continue
		}
		out = append(out, math.Abs((pred[i]-obs[i])/obs[i]))
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x): the fraction of samples less than or equal to x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v such that At(v) >= q,
// for q in (0,1]. Quantile(0) returns the minimum.
func (c *CDF) Quantile(q float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if q <= 0 {
		return c.sorted[0], nil
	}
	if q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx], nil
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting the CDF as a step curve. It returns the full sample when
// n <= 0 or n >= Len().
func (c *CDF) Points(n int) (xs, ps []float64) {
	m := len(c.sorted)
	if m == 0 {
		return nil, nil
	}
	if n <= 0 || n >= m {
		n = m
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / max(n-1, 1)
		xs[i] = c.sorted[idx]
		ps[i] = float64(idx+1) / float64(m)
	}
	return xs, ps
}

// Welford accumulates a running mean and variance without storing the
// sample, using Welford's online algorithm.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// GeoMean returns the geometric mean of xs; all elements must be
// positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean requires positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
