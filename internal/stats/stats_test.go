package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if _, err := MeanErr(nil); err != ErrEmpty {
		t.Fatalf("MeanErr(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be +-Inf")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-sample variance must be 0")
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("MSE = %v, want 2.5", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := MSE(nil, nil); err != ErrEmpty {
		t.Fatalf("empty MSE err = %v", err)
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
	// Zero observations are skipped.
	got, err = MAPE([]float64{5, 110}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("MAPE with zero obs = %v, want 0.1", got)
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err != ErrEmpty {
		t.Fatal("all-zero obs must be ErrEmpty")
	}
}

func TestAbsRelErrors(t *testing.T) {
	es := AbsRelErrors([]float64{110, 95, 7}, []float64{100, 100, 0})
	if len(es) != 2 {
		t.Fatalf("len = %d, want 2 (zero obs skipped)", len(es))
	}
	if !almostEq(es[0], 0.10, 1e-12) || !almostEq(es[1], 0.05, 1e-12) {
		t.Fatalf("errors = %v", es)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, tc.want, 1e-12) {
			t.Fatalf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile must error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("out-of-range percentile must error")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	q, err := c.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", q)
	}
	if q, _ := c.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v, want min", q)
	}
	if _, err := c.Quantile(1.5); err == nil {
		t.Fatal("quantile > 1 must error")
	}
	if (&CDF{}).At(1) != 0 {
		t.Fatal("empty CDF At must be 0")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("Points lengths = %d/%d", len(xs), len(ps))
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("last CDF point = %v, want 1", ps[len(ps)-1])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ps[i] < ps[i-1] {
			t.Fatal("CDF points must be nondecreasing")
		}
	}
	xs, _ = c.Points(0)
	if len(xs) != 10 {
		t.Fatalf("Points(0) should return all samples, got %d", len(xs))
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", g)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative input must error")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatal("empty input must be ErrEmpty")
	}
}

// Property: CDF.At is monotone nondecreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		c := NewCDF(xs)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := c.At(a), c.At(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] of the sample.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.Abs(v) < 1e9 { // avoid float blowup artifacts
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile(100) is the maximum, Percentile(0) the minimum.
func TestPercentileExtremesProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, _ := Percentile(xs, 0)
		hi, _ := Percentile(xs, 100)
		return lo == Min(xs) && hi == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
