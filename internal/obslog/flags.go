package obslog

import (
	"flag"
	"io"
	"os"
)

// Flags is the shared command-line surface every dora command wires
// with RegisterFlags: one severity spec, an optional rotated file
// destination, and the rotation geometry. Keeping it here means the
// five CLIs and the daemon agree on flag names and defaults.
type Flags struct {
	// Spec is the -log-level value: "level" plus optional
	// "module=level" overrides (see ParseLevelSpec).
	Spec string
	// File is the -log-file value; empty logs to stderr, unrotated.
	File string
	// MaxBytes / Backups are the -log-max-bytes / -log-backups
	// rotation geometry, used only with -log-file.
	MaxBytes int64
	Backups  int
}

// RegisterFlags declares the logging flags on fs (the command's flag
// set) and returns the destination they fill in at Parse time.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Spec, "log-level", "info",
		"log severity: LEVEL or LEVEL,module=LEVEL,... (debug|info|warn|error|off)")
	fs.StringVar(&f.File, "log-file", "",
		"write structured logs to this file (size-rotated); empty = stderr")
	fs.Int64Var(&f.MaxBytes, "log-max-bytes", DefaultMaxBytes,
		"rotate -log-file after it reaches this many bytes")
	fs.IntVar(&f.Backups, "log-backups", DefaultMaxBackups,
		"rotated -log-file backups to keep (0 = truncate on rotation)")
	return f
}

// Open builds the Logger the parsed flags describe, already scoped to
// module. The returned closer is non-nil only for file sinks; callers
// defer Close() unconditionally via the wrapper.
func (f *Flags) Open(module string) (*Logger, io.Closer, error) {
	def, mods, err := ParseLevelSpec(f.Spec)
	if err != nil {
		return nil, nopCloser{}, err
	}
	var w io.Writer = os.Stderr
	var closer io.Closer = nopCloser{}
	if f.File != "" {
		sink, err := OpenFile(f.File, f.MaxBytes, f.Backups)
		if err != nil {
			return nil, nopCloser{}, err
		}
		w, closer = sink, sink
	}
	l := New(w, Options{Level: def, ModuleLevels: mods})
	return l.Module(module), closer, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
