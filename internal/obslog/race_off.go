//go:build !race

package obslog

// raceEnabled reports whether the binary was built with the race
// detector (see race_on.go); the disabled-path allocation guard only
// enforces its strict zero-allocs assertion when instrumentation is
// off, because the race runtime allocates on its own.
const raceEnabled = false
