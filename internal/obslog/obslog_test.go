package obslog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLineFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{Level: LevelDebug}).Module("serve")
	l.Info().
		Str("rid", "ab-1").
		Str("path", "/v1/load").
		Int("status", 200).
		Int64("big", -9_000_000_000).
		Uint64("count", 7).
		Float("ratio", 0.25).
		Bool("ok", true).
		Dur("queue_wait_ms", 1500*time.Microsecond).
		Err(errors.New("boom boom")).
		Msg("request done")
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	for _, want := range []string{
		" level=info", " module=serve", " rid=ab-1", " path=/v1/load",
		" status=200", " big=-9000000000", " count=7", " ratio=0.25",
		" ok=true", " queue_wait_ms=1.500", ` err="boom boom"`, ` msg="request done"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
	if !regexp.MustCompile(`^ts=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z `).MatchString(line) {
		t.Errorf("line does not start with an RFC3339-ms UTC timestamp: %s", line)
	}
}

func TestValueQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{})
	l.Info().
		Str("plain", "abc-123").
		Str("spaced", "a b").
		Str("eq", "k=v").
		Str("quote", `say "hi"`).
		Str("empty", "").
		Str("ctl", "a\nb").
		Msg("m")
	line := buf.String()
	for _, want := range []string{
		` plain=abc-123`, ` spaced="a b"`, ` eq="k=v"`, ` quote="say \"hi\""`,
		` empty=""`, ` ctl="a\nb"`, ` msg=m`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{Level: LevelWarn})
	l.Debug().Str("k", "v").Msg("debug")
	l.Info().Msg("info")
	l.Warn().Msg("warn")
	l.Error().Msg("error")
	out := buf.String()
	if strings.Contains(out, "msg=debug") || strings.Contains(out, "msg=info") {
		t.Fatalf("below-threshold lines leaked: %s", out)
	}
	if !strings.Contains(out, "msg=warn") || !strings.Contains(out, "msg=error") {
		t.Fatalf("at/above-threshold lines missing: %s", out)
	}

	// Runtime adjustment applies to subsequent events.
	l.SetLevel(LevelDebug)
	buf.Reset()
	l.Debug().Msg("now visible")
	if !strings.Contains(buf.String(), "msg=\"now visible\"") {
		t.Fatalf("SetLevel(debug) did not take: %q", buf.String())
	}
}

func TestModuleLevels(t *testing.T) {
	var buf bytes.Buffer
	root := New(&buf, Options{Level: LevelWarn, ModuleLevels: map[string]Level{"serve": LevelDebug}})
	serve, access := root.Module("serve"), root.Module("access")

	serve.Debug().Msg("serve-debug")   // serve overridden to debug: kept
	access.Info().Msg("access-info")   // access falls back to warn: dropped
	access.Error().Msg("access-error") // above warn: kept
	out := buf.String()
	if !strings.Contains(out, "msg=serve-debug") {
		t.Errorf("module override ignored: %s", out)
	}
	if strings.Contains(out, "msg=access-info") {
		t.Errorf("default level not applied to unlisted module: %s", out)
	}
	if !strings.Contains(out, "msg=access-error") {
		t.Errorf("error line dropped: %s", out)
	}

	root.SetModuleLevel("access", LevelOff)
	buf.Reset()
	access.Error().Msg("gone")
	if buf.Len() != 0 {
		t.Errorf("module=off still wrote: %q", buf.String())
	}
}

func TestParseLevelSpec(t *testing.T) {
	def, mods, err := ParseLevelSpec("warn, serve=debug ,access=off")
	if err != nil {
		t.Fatal(err)
	}
	if def != LevelWarn {
		t.Errorf("default = %v, want warn", def)
	}
	if mods["serve"] != LevelDebug || mods["access"] != LevelOff {
		t.Errorf("module map = %v", mods)
	}
	if def, mods, err := ParseLevelSpec(""); err != nil || def != LevelInfo || mods != nil {
		t.Errorf("empty spec = (%v, %v, %v), want (info, nil, nil)", def, mods, err)
	}
	for _, bad := range []string{"nope", "serve=nope", "=debug"} {
		if _, _, err := ParseLevelSpec(bad); err == nil {
			t.Errorf("ParseLevelSpec(%q) accepted", bad)
		}
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for lv := LevelDebug; lv <= LevelOff; lv++ {
		got, err := ParseLevel(strings.ToUpper(lv.String()))
		if err != nil || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
}

func TestNilLoggerAndDiscard(t *testing.T) {
	var l *Logger
	// Every method on a nil logger and its nil events must be a no-op.
	l.SetLevel(LevelDebug)
	l.SetModuleLevel("x", LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	l.Module("x").Error().Str("k", "v").Int("n", 1).Err(errors.New("e")).Msg("dropped")
	Discard().Info().Msg("dropped")
}

// TestConcurrentWriters hammers one sink from many goroutines under
// -race: every line must come out whole (no interleaving) and the
// module filters must stay readable during concurrent SetModuleLevel.
func TestConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	root := New(&buf, Options{Level: LevelDebug})
	const workers, lines = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := root.Module(fmt.Sprintf("m%d", w))
			for i := 0; i < lines; i++ {
				l.Info().Int("worker", w).Int("i", i).Str("pad", "xxxxxxxxxxxxxxxx").Msg("tick")
				if i%32 == 0 {
					root.SetModuleLevel(fmt.Sprintf("m%d", w), LevelDebug)
				}
			}
		}(w)
	}
	wg.Wait()
	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(got) != workers*lines {
		t.Fatalf("got %d lines, want %d", len(got), workers*lines)
	}
	for _, line := range got {
		if !strings.HasPrefix(line, "ts=") || !strings.HasSuffix(line, "msg=tick") {
			t.Fatalf("torn line: %q", line)
		}
	}
}

func TestRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dora.log")
	sink, err := OpenFile(path, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	line := strings.Repeat("x", 99) + "\n" // 100 bytes
	for i := 0; i < 7; i++ {
		if _, err := sink.Write([]byte(line)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// 7 x 100 B against a 256 B cap: writes 1-2 fit (200), write 3 would
	// reach 300 -> rotate, and so on. Every file must hold whole lines
	// and stay <= 256 B; backups must stop at .2.
	sizes := map[string]int{path: 0, path + ".1": 0, path + ".2": 0}
	total := 0
	for p := range sizes {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("expected rotated file %s: %v", p, err)
		}
		if len(data) > 256 {
			t.Errorf("%s is %d bytes, exceeds the 256-byte cap", p, len(data))
		}
		if len(data)%100 != 0 {
			t.Errorf("%s holds a torn line (%d bytes)", p, len(data))
		}
		total += len(data)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("backup beyond maxBackups exists: path.3 (err=%v)", err)
	}
	// With 2 backups kept, at most one rotation's worth may be deleted.
	if total < 500 {
		t.Errorf("only %d bytes survive across rotations, want >= 500", total)
	}
}

func TestRotationCrossesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dora.log")
	write := func(n int) {
		sink, err := OpenFile(path, 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := sink.Write([]byte(strings.Repeat("y", 99) + "\n")); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(2) // 200 bytes
	write(1) // reopen must see size 200 and rotate before exceeding 256
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 100 {
		t.Fatalf("current file is %d bytes after restart rotation, want 100", len(data))
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("restart rotation kept no backup: %v", err)
	}
}

func TestRotationZeroBackupsTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dora.log")
	sink, err := OpenFile(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	for i := 0; i < 4; i++ {
		if _, err := sink.Write([]byte(strings.Repeat("z", 63) + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Errorf("maxBackups=0 still created a backup (err=%v)", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 128 || len(data)%64 != 0 {
		t.Errorf("truncating rotation left %d bytes", len(data))
	}
}

// TestObslogDisabledAllocs is the runtime twin of
// BenchmarkObslogDisabled: a fully chained event below the level
// threshold must not allocate at all. Mirrors TestQuantumLoopAllocs'
// race gating — the race runtime allocates on its own.
func TestObslogDisabledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	l := New(os.Stderr, Options{Level: LevelOff}).Module("serve")
	allocs := testing.AllocsPerRun(1000, func() {
		l.Debug().
			Str("rid", "ab-1").
			Str("path", "/v1/load").
			Int("status", 200).
			Dur("latency_ms", time.Millisecond).
			Msg("request")
	})
	if allocs != 0 {
		t.Fatalf("disabled log path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkObslogDisabled is the disabled-path cost guard, the obslog
// twin of BenchmarkTelemetryDisabled: run with -benchmem, allocs/op
// must be 0.
func BenchmarkObslogDisabled(b *testing.B) {
	l := New(os.Stderr, Options{Level: LevelOff}).Module("serve")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug().
			Str("rid", "ab-1").
			Str("path", "/v1/load").
			Int("status", 200).
			Dur("latency_ms", time.Millisecond).
			Msg("request")
	}
}

// BenchmarkObslogEnabled quantifies the enabled-path cost against a
// discarding writer (buffer reuse should hold steady-state allocs
// near zero, but the assertion lives only on the disabled path).
func BenchmarkObslogEnabled(b *testing.B) {
	l := New(devNull{}, Options{Level: LevelDebug}).Module("serve")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Info().
			Str("rid", "ab-1").
			Str("path", "/v1/load").
			Int("status", 200).
			Dur("latency_ms", time.Millisecond).
			Msg("request")
	}
}

type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }
