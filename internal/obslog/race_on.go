//go:build race

package obslog

// raceEnabled mirrors race_off.go for -race builds.
const raceEnabled = true
