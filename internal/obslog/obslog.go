// Package obslog is the repository's structured operational logger:
// leveled key=value lines for the serving path and the CLIs, in the
// spirit of aistore's cmn/nlog but reduced to what this module needs.
//
//	ts=2026-08-08T10:11:12.130Z level=info module=serve rid=ab12f0-7 msg="request" status=200
//
// Three properties drive the design:
//
//   - Disabled means free. A filtered-out call must not allocate or
//     format: level constructors return a nil *Event, every Event
//     method is a nil-receiver no-op (the same idiom as a nil
//     telemetry.Counter), and fields are typed — no interface boxing,
//     no variadic slice. BenchmarkObslogDisabled holds the whole
//     chain to 0 allocs/op.
//   - Module-level severity. One process-wide sink, many module
//     handles (Logger.Module), each resolvable to its own level via
//     a spec like "info,serve=debug" (ParseLevelSpec), adjustable at
//     runtime.
//   - Bounded disk. The file sink rotates by size (FileSink), keeping
//     a fixed number of numbered backups, so a misbehaving daemon
//     cannot fill the disk.
//
// obslog reads the wall clock for timestamps and is therefore banned
// (by the doralint determinism rule) from every package that feeds
// the campaign fingerprint; serving and command packages only.
package obslog

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a line's severity. Higher is more severe; a logger emits
// lines at or above its configured level. Off disables everything.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

var levelNames = [...]string{"debug", "info", "warn", "error", "off"}

// String returns the lowercase level name.
func (l Level) String() string {
	if l < LevelDebug || l > LevelOff {
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
	return levelNames[l]
}

// ParseLevel parses a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	for i, name := range levelNames {
		if strings.EqualFold(s, name) {
			return Level(i), nil
		}
	}
	return LevelOff, fmt.Errorf("obslog: unknown level %q (debug|info|warn|error|off)", s)
}

// ParseLevelSpec parses a severity spec: a comma-separated list of
// "level" (the default) and "module=level" overrides, e.g.
// "info,serve=debug,access=off". An empty spec means Info.
func ParseLevelSpec(spec string) (Level, map[string]Level, error) {
	def := LevelInfo
	var mods map[string]Level
	if strings.TrimSpace(spec) == "" {
		return def, nil, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if mod, lv, ok := strings.Cut(part, "="); ok {
			parsed, err := ParseLevel(lv)
			if err != nil {
				return 0, nil, fmt.Errorf("obslog: module filter %q: %w", part, err)
			}
			mod = strings.TrimSpace(mod)
			if mod == "" {
				return 0, nil, fmt.Errorf("obslog: module filter %q names no module", part)
			}
			if mods == nil {
				mods = make(map[string]Level)
			}
			mods[strings.TrimSpace(mod)] = parsed
			continue
		}
		parsed, err := ParseLevel(part)
		if err != nil {
			return 0, nil, err
		}
		def = parsed
	}
	return def, mods, nil
}

// core is the shared state behind every Logger handle derived from one
// New call: the sink, the default level, and the per-module overrides.
type core struct {
	mu    sync.Mutex // serializes writes: one line per Write call
	w     io.Writer
	level atomic.Int32 // default Level
	mods  sync.Map     // module string -> Level (stored as int32)
}

// Logger is a module-scoped handle on a shared log sink. A nil
// *Logger is valid and discards everything, so optional logging
// dependencies need no nil checks at call sites.
type Logger struct {
	c      *core
	module string
}

// Options configures New.
type Options struct {
	// Level is the default severity threshold (LevelDebug == 0 keeps
	// everything, which is also the zero-value behavior; use LevelOff
	// to discard).
	Level Level
	// ModuleLevels overrides the threshold per module name.
	ModuleLevels map[string]Level
}

// New returns a Logger writing key=value lines to w. Derive
// per-module handles with Module; adjust severities at runtime with
// SetLevel / SetModuleLevel.
func New(w io.Writer, opts Options) *Logger {
	c := &core{w: w}
	c.level.Store(int32(opts.Level))
	for mod, lv := range opts.ModuleLevels {
		c.mods.Store(mod, int32(lv))
	}
	return &Logger{c: c}
}

// Discard is a logger that drops everything at zero cost — the
// explicit spelling of a nil *Logger for APIs that prefer a value.
func Discard() *Logger { return nil }

// Module returns a handle emitting lines tagged module=name and
// filtered by that module's level (falling back to the default).
func (l *Logger) Module(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{c: l.c, module: name}
}

// SetLevel adjusts the default severity threshold at runtime.
func (l *Logger) SetLevel(lv Level) {
	if l != nil {
		l.c.level.Store(int32(lv))
	}
}

// SetModuleLevel adds or replaces one module's severity override.
func (l *Logger) SetModuleLevel(module string, lv Level) {
	if l != nil {
		l.c.mods.Store(module, int32(lv))
	}
}

// Enabled reports whether a line at lv would be emitted by this
// handle. The check is two atomic loads on the hot path.
func (l *Logger) Enabled(lv Level) bool {
	if l == nil {
		return false
	}
	if v, ok := l.c.mods.Load(l.module); ok {
		return lv >= Level(v.(int32))
	}
	return lv >= Level(l.c.level.Load())
}

// Event is one in-flight log line being assembled. A nil *Event (from
// a filtered-out level constructor) ignores every call, so the
// disabled path costs two atomic loads and nothing else.
type Event struct {
	buf []byte
	c   *core
}

// eventPool recycles line buffers so the enabled path settles at zero
// steady-state allocations too.
var eventPool = sync.Pool{New: func() any { return &Event{buf: make([]byte, 0, 256)} }}

// event starts a line: timestamp, level, module.
func (l *Logger) event(lv Level) *Event {
	if !l.Enabled(lv) {
		return nil
	}
	e := eventPool.Get().(*Event)
	e.c = l.c
	e.buf = append(e.buf, "ts="...)
	e.buf = time.Now().UTC().AppendFormat(e.buf, "2006-01-02T15:04:05.000Z")
	e.buf = append(e.buf, " level="...)
	e.buf = append(e.buf, lv.String()...)
	if l.module != "" {
		e.buf = append(e.buf, " module="...)
		e.buf = appendValue(e.buf, l.module)
	}
	return e
}

// Debug starts a debug-level line (nil when filtered).
func (l *Logger) Debug() *Event { return l.event(LevelDebug) }

// Info starts an info-level line (nil when filtered).
func (l *Logger) Info() *Event { return l.event(LevelInfo) }

// Warn starts a warn-level line (nil when filtered).
func (l *Logger) Warn() *Event { return l.event(LevelWarn) }

// Error starts an error-level line (nil when filtered).
func (l *Logger) Error() *Event { return l.event(LevelError) }

// appendValue appends v, quoting only when it contains characters
// that would break key=value tokenization (spaces, quotes, '=',
// control bytes) so the common case stays scan-free.
func appendValue(buf []byte, v string) []byte {
	if needsQuoting(v) {
		return strconv.AppendQuote(buf, v)
	}
	return append(buf, v...)
}

func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return true
		}
	}
	return false
}

func (e *Event) key(k string) {
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, k...)
	e.buf = append(e.buf, '=')
}

// Str adds a string field.
func (e *Event) Str(k, v string) *Event {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = appendValue(e.buf, v)
	return e
}

// Int adds an int field.
func (e *Event) Int(k string, v int) *Event { return e.Int64(k, int64(v)) }

// Int64 adds an int64 field.
func (e *Event) Int64(k string, v int64) *Event {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendInt(e.buf, v, 10)
	return e
}

// Uint64 adds a uint64 field.
func (e *Event) Uint64(k string, v uint64) *Event {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendUint(e.buf, v, 10)
	return e
}

// Float adds a float64 field in shortest form.
func (e *Event) Float(k string, v float64) *Event {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendFloat(e.buf, v, 'g', -1, 64)
	return e
}

// Bool adds a bool field.
func (e *Event) Bool(k string, v bool) *Event {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendBool(e.buf, v)
	return e
}

// Dur adds a duration field rendered as integral milliseconds
// (key expected to carry a _ms suffix by convention).
func (e *Event) Dur(k string, d time.Duration) *Event {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendFloat(e.buf, float64(d)/float64(time.Millisecond), 'f', 3, 64)
	return e
}

// Err adds an error field (skipped when err is nil).
func (e *Event) Err(err error) *Event {
	if e == nil || err == nil {
		return e
	}
	return e.Str("err", err.Error())
}

// Msg terminates the line with msg="..." and writes it. Every event
// chain must end in Msg; an abandoned event leaks its buffer until GC
// but writes nothing.
func (e *Event) Msg(msg string) {
	if e == nil {
		return
	}
	e.key("msg")
	e.buf = appendValue(e.buf, msg)
	e.buf = append(e.buf, '\n')
	c := e.c
	c.mu.Lock()
	_, _ = c.w.Write(e.buf)
	c.mu.Unlock()
	e.c = nil
	if cap(e.buf) <= 1<<12 { // don't pin jumbo lines in the pool
		e.buf = e.buf[:0]
		eventPool.Put(e)
	}
}
