package obslog

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// Default rotation geometry: 8 MiB per file, 3 numbered backups —
// ~32 MiB worst case per daemon, small enough for a phone-class
// device image, large enough to hold hours of access lines.
const (
	DefaultMaxBytes   = 8 << 20
	DefaultMaxBackups = 3
)

// FileSink is a size-rotated log file. When a write would push the
// current file past MaxBytes, the file is closed and renamed to
// path.1 (existing backups shift to path.2 … path.MaxBackups, the
// oldest is deleted) and a fresh file is opened at path. Writes are
// serialized; a FileSink is safe for concurrent use, though the
// Logger already serializes its own writes.
type FileSink struct {
	mu         sync.Mutex
	path       string
	f          *os.File
	size       int64
	maxBytes   int64
	maxBackups int
}

// OpenFile opens (appending) or creates the sink file. maxBytes <= 0
// takes DefaultMaxBytes; maxBackups < 0 takes DefaultMaxBackups,
// while maxBackups == 0 keeps no backups (rotation truncates).
func OpenFile(path string, maxBytes int64, maxBackups int) (*FileSink, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxBackups < 0 {
		maxBackups = DefaultMaxBackups
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obslog: open log file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obslog: stat log file: %w", err)
	}
	return &FileSink{path: path, f: f, size: st.Size(), maxBytes: maxBytes, maxBackups: maxBackups}, nil
}

// Write appends one (already-assembled) log line, rotating first if
// the line would push the file past MaxBytes. A line larger than
// MaxBytes still lands in one file: rotation bounds growth, it does
// not split lines.
func (s *FileSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size > 0 && s.size+int64(len(p)) > s.maxBytes {
		//doralint:allow locksafe rotation must be atomic with concurrent writers: the file swap IS the critical section, and log-line writers tolerate the rotation pause
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := s.f.Write(p)
	s.size += int64(n)
	return n, err
}

// rotateLocked shifts backups and reopens a fresh file.
func (s *FileSink) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("obslog: rotate close: %w", err)
	}
	if s.maxBackups == 0 {
		// No backups kept: truncate in place.
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("obslog: rotate reopen: %w", err)
		}
		s.f, s.size = f, 0
		return nil
	}
	// Shift path.(n-1) -> path.n from the oldest down, then path -> path.1.
	_ = os.Remove(s.backupPath(s.maxBackups))
	for i := s.maxBackups - 1; i >= 1; i-- {
		// Rename fails benignly when the source does not exist yet.
		_ = os.Rename(s.backupPath(i), s.backupPath(i+1))
	}
	if err := os.Rename(s.path, s.backupPath(1)); err != nil {
		return fmt.Errorf("obslog: rotate rename: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obslog: rotate reopen: %w", err)
	}
	s.f, s.size = f, 0
	return nil
}

func (s *FileSink) backupPath(i int) string {
	return s.path + "." + strconv.Itoa(i)
}

// Close flushes and closes the current file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//doralint:allow locksafe Close must exclude in-flight Write/rotate; closing the file under the lock is the guarded operation, not incidental work
	return s.f.Close()
}
