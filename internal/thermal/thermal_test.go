package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultNexus5())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := DefaultNexus5().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultNexus5()
	bad.SoCResistance = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero resistance must fail")
	}
	bad = DefaultNexus5()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero cores must fail")
	}
	bad = DefaultNexus5()
	bad.SoCTimeConst = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero time constant must fail")
	}
}

func TestStartsAtAmbient(t *testing.T) {
	m := newModel(t)
	if m.SoCTemp() != 25 || m.CoreTemp(0) != 25 || m.MaxCoreTemp() != 25 {
		t.Fatalf("initial temps: soc=%v core=%v", m.SoCTemp(), m.CoreTemp(0))
	}
}

func TestConvergesToSteadyState(t *testing.T) {
	m := newModel(t)
	p := 3.0 // watts, heavy sustained load
	want := m.SteadyStateSoC(p)
	for i := 0; i < 1500; i++ { // 150 s of 100 ms steps >> tau
		m.Step(100*time.Millisecond, p, []float64{p / 4, p / 4, p / 4, p / 4})
	}
	if math.Abs(m.SoCTemp()-want) > 0.1 {
		t.Fatalf("SoC temp %v, want steady state %v", m.SoCTemp(), want)
	}
	// Calibration: ~3 W at room temperature lands in the paper's 55-65
	// degC band.
	if m.SoCTemp() < 52 || m.SoCTemp() > 68 {
		t.Fatalf("steady temp %v outside paper-calibrated band", m.SoCTemp())
	}
	// Core sensors read above the SoC node under load.
	if m.CoreTemp(0) <= m.SoCTemp() {
		t.Fatal("loaded core must run hotter than SoC node")
	}
}

func TestStepSizeInvariance(t *testing.T) {
	// Exact exponential update: one 1 s step == ten 100 ms steps.
	a := newModel(t)
	b := newModel(t)
	p := []float64{2, 0, 0, 0}
	a.Step(time.Second, 2, p)
	for i := 0; i < 10; i++ {
		b.Step(100*time.Millisecond, 2, p)
	}
	if math.Abs(a.SoCTemp()-b.SoCTemp()) > 1e-9 {
		t.Fatalf("step-size dependence: %v vs %v", a.SoCTemp(), b.SoCTemp())
	}
	if math.Abs(a.CoreTemp(0)-b.CoreTemp(0)) > 1e-9 {
		t.Fatalf("core step-size dependence: %v vs %v", a.CoreTemp(0), b.CoreTemp(0))
	}
}

func TestCooldown(t *testing.T) {
	m := newModel(t)
	for i := 0; i < 300; i++ {
		m.Step(100*time.Millisecond, 3, []float64{1, 1, 1, 0})
	}
	hot := m.SoCTemp()
	for i := 0; i < 3000; i++ {
		m.Step(100*time.Millisecond, 0, nil)
	}
	if m.SoCTemp() >= hot {
		t.Fatal("must cool down with power removed")
	}
	if math.Abs(m.SoCTemp()-25) > 0.2 {
		t.Fatalf("must relax to ambient, got %v", m.SoCTemp())
	}
}

func TestAmbientShift(t *testing.T) {
	m := newModel(t)
	m.SetAmbient(10)
	if m.Ambient() != 10 {
		t.Fatal("SetAmbient not applied")
	}
	for i := 0; i < 2000; i++ {
		m.Step(100*time.Millisecond, 1, []float64{1})
	}
	cold := m.SoCTemp()
	m.Reset()
	m.SetAmbient(25)
	for i := 0; i < 2000; i++ {
		m.Step(100*time.Millisecond, 1, []float64{1})
	}
	room := m.SoCTemp()
	if room-cold < 10 {
		t.Fatalf("room vs cold ambient separation too small: %v vs %v", room, cold)
	}
}

func TestEdgeCases(t *testing.T) {
	m := newModel(t)
	m.Step(0, 5, nil)            // no-op
	m.Step(-time.Second, 5, nil) // no-op
	if m.SoCTemp() != 25 {
		t.Fatal("non-positive dt must not change state")
	}
	// Negative power treated as zero.
	m.Step(time.Second, -10, []float64{-5})
	if m.SoCTemp() < 25-1e-9 {
		t.Fatal("negative power must not cool below ambient")
	}
	// Out-of-range core index falls back to SoC temp.
	if m.CoreTemp(99) != m.SoCTemp() || m.CoreTemp(-1) != m.SoCTemp() {
		t.Fatal("out-of-range core temp fallback wrong")
	}
}

func TestReset(t *testing.T) {
	m := newModel(t)
	m.Step(10*time.Second, 4, []float64{4})
	m.Reset()
	if m.SoCTemp() != 25 || m.CoreTemp(0) != 25 {
		t.Fatal("Reset must return to ambient")
	}
}

// Property: temperature stays within [ambient, steady-state(maxP)] for
// any bounded power sequence, and is monotone under constant power.
func TestBoundedTrajectoryProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		m, err := New(DefaultNexus5())
		if err != nil {
			return false
		}
		maxP := 4.0
		hi := m.SteadyStateSoC(maxP)
		prev := m.SoCTemp()
		r := seed
		for i := 0; i < int(steps)+1; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			p := math.Abs(float64(r%1000)) / 1000 * maxP
			m.Step(50*time.Millisecond, p, []float64{p})
			tt := m.SoCTemp()
			if tt < m.Ambient()-1e-9 || tt > hi+1e-9 {
				return false
			}
			prev = tt
		}
		_ = prev
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneHeatingProperty(t *testing.T) {
	f := func(raw uint8) bool {
		m, _ := New(DefaultNexus5())
		p := 0.5 + float64(raw)/64
		prev := m.SoCTemp()
		for i := 0; i < 50; i++ {
			m.Step(100*time.Millisecond, p, []float64{p})
			if m.SoCTemp() < prev-1e-12 {
				return false
			}
			prev = m.SoCTemp()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
