// Package thermal models the temperature of the simulated handset with
// a two-level RC network: a slow SoC/skin node heated by total SoC
// power, plus a fast local rise per core driven by that core's own
// power. Smartphones have no active cooling, so temperature — and with
// it leakage power — rises markedly at high frequency, which is what
// shifts DORA's optimal operating point in the paper's Fig. 10.
package thermal

import (
	"errors"
	"math"
	"time"
)

// Config parameterizes the RC network.
type Config struct {
	AmbientC float64 // ambient (room or cold) temperature, Celsius

	// SoC node: temperature rise R*P with time constant Tau.
	SoCResistance float64       // degC per watt
	SoCTimeConst  time.Duration // seconds-scale

	// Per-core local hotspot rise above the SoC node.
	CoreResistance float64 // degC per watt of that core's power
	CoreTimeConst  time.Duration

	Cores int
}

// DefaultNexus5 returns thermal parameters calibrated so a sustained
// ~3 W SoC load at room temperature (25 degC) settles near the 58-65
// degC the paper reports at 1.9 GHz.
func DefaultNexus5() Config {
	return Config{
		AmbientC:       25,
		SoCResistance:  11,
		SoCTimeConst:   12 * time.Second,
		CoreResistance: 3,
		CoreTimeConst:  1500 * time.Millisecond,
		Cores:          4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SoCResistance <= 0 || c.CoreResistance < 0 {
		return errors.New("thermal: non-positive resistance")
	}
	if c.SoCTimeConst <= 0 || c.CoreTimeConst <= 0 {
		return errors.New("thermal: non-positive time constant")
	}
	if c.Cores <= 0 {
		return errors.New("thermal: need at least one core")
	}
	return nil
}

// Model holds the thermal state.
type Model struct {
	cfg      Config
	socTemp  float64   // absolute SoC node temperature, degC
	coreRise []float64 // local rise above SoC node per core
}

// New builds a model at thermal equilibrium with ambient.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		cfg:      cfg,
		socTemp:  cfg.AmbientC,
		coreRise: make([]float64, cfg.Cores),
	}, nil
}

// SetAmbient changes the ambient temperature (the paper's room vs low
// ambient experiment). State relaxes toward the new ambient over the
// configured time constants.
func (m *Model) SetAmbient(c float64) { m.cfg.AmbientC = c }

// Ambient returns the current ambient temperature.
func (m *Model) Ambient() float64 { return m.cfg.AmbientC }

// Step advances the model by dt with the given SoC total power and
// per-core powers (watts). The exponential update is exact for
// piecewise-constant power, so step size does not affect accuracy.
func (m *Model) Step(dt time.Duration, socPowerW float64, corePowersW []float64) {
	if dt <= 0 {
		return
	}
	// SoC node toward steady state Tamb + R*P.
	tss := m.cfg.AmbientC + m.cfg.SoCResistance*math.Max(0, socPowerW)
	alpha := 1 - math.Exp(-dt.Seconds()/m.cfg.SoCTimeConst.Seconds())
	m.socTemp += (tss - m.socTemp) * alpha

	beta := 1 - math.Exp(-dt.Seconds()/m.cfg.CoreTimeConst.Seconds())
	for i := range m.coreRise {
		p := 0.0
		if i < len(corePowersW) {
			p = math.Max(0, corePowersW[i])
		}
		rss := m.cfg.CoreResistance * p
		m.coreRise[i] += (rss - m.coreRise[i]) * beta
	}
}

// SoCTemp returns the SoC node temperature in Celsius.
func (m *Model) SoCTemp() float64 { return m.socTemp }

// CoreTemp returns core i's sensor temperature (SoC node + local rise).
func (m *Model) CoreTemp(i int) float64 {
	if i < 0 || i >= len(m.coreRise) {
		return m.socTemp
	}
	return m.socTemp + m.coreRise[i]
}

// MaxCoreTemp returns the hottest core temperature.
func (m *Model) MaxCoreTemp() float64 {
	t := m.socTemp
	for i := range m.coreRise {
		if ct := m.CoreTemp(i); ct > t {
			t = ct
		}
	}
	return t
}

// Prewarm sets the SoC node to the given temperature (device already
// in use before the experiment), leaving core offsets at zero.
func (m *Model) Prewarm(tempC float64) {
	if tempC > m.cfg.AmbientC {
		m.socTemp = tempC
	}
}

// Reset returns the model to ambient equilibrium.
func (m *Model) Reset() {
	m.socTemp = m.cfg.AmbientC
	for i := range m.coreRise {
		m.coreRise[i] = 0
	}
}

// SteadyStateSoC returns the temperature the SoC node would settle at
// under constant power p.
func (m *Model) SteadyStateSoC(p float64) float64 {
	return m.cfg.AmbientC + m.cfg.SoCResistance*math.Max(0, p)
}

// Snapshot is the thermal model's warm state: the SoC node temperature
// and every core's local rise, plus the ambient the model references.
type Snapshot struct {
	SoCTemp  float64
	CoreRise []float64
	AmbientC float64
}

// Snapshot captures the thermal state for a simulation checkpoint.
func (m *Model) Snapshot() Snapshot {
	s := Snapshot{SoCTemp: m.socTemp, CoreRise: make([]float64, len(m.coreRise)), AmbientC: m.cfg.AmbientC}
	copy(s.CoreRise, m.coreRise)
	return s
}

// Restore overwrites the thermal state with a snapshot from a model of
// the same core count.
func (m *Model) Restore(s Snapshot) {
	if len(s.CoreRise) != len(m.coreRise) {
		panic("thermal: snapshot core-count mismatch")
	}
	m.socTemp = s.SoCTemp
	copy(m.coreRise, s.CoreRise)
	m.cfg.AmbientC = s.AmbientC
}
