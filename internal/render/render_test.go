package render

import (
	"testing"

	"dora/internal/webdoc"
	"dora/internal/webgen"
	"dora/internal/workload"
)

func planFor(t *testing.T, page string) *Plan {
	t.Helper()
	spec, err := webgen.ByName(page)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := webdoc.Parse(spec.HTML())
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(DefaultConfig(), doc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildPlanErrors(t *testing.T) {
	if _, err := BuildPlan(DefaultConfig(), nil); err == nil {
		t.Fatal("nil document must error")
	}
	cfg := DefaultConfig()
	cfg.ChunkNodes = 0
	doc, _ := webdoc.Parse("<div>x</div>")
	if _, err := BuildPlan(cfg, doc); err == nil {
		t.Fatal("zero chunk size must error")
	}
	empty, _ := webdoc.Parse("   ")
	if _, err := BuildPlan(DefaultConfig(), empty); err == nil {
		t.Fatal("empty document must error")
	}
}

func TestPlanPhases(t *testing.T) {
	p := planFor(t, "Amazon")
	phases := map[string]bool{}
	for _, s := range p.Main {
		phases[s.Kind] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid segment %+v: %v", s, err)
		}
	}
	for _, want := range []string{"parse", "parse-stream", "script", "style", "layout", "paint"} {
		if !phases[want] {
			t.Fatalf("missing phase %q (got %v)", want, phases)
		}
	}
	if len(p.Helper) == 0 {
		t.Fatal("Amazon has images; helper thread must have decode work")
	}
	for _, s := range p.Helper {
		if s.Kind != "decode" {
			t.Fatalf("helper segment kind = %q", s.Kind)
		}
	}
}

func TestPhaseOrdering(t *testing.T) {
	// Pipeline order: all parse work precedes style, style precedes
	// layout, layout precedes paint.
	p := planFor(t, "Reddit")
	rank := map[string]int{"parse": 0, "parse-stream": 0, "script": 1, "style": 2, "layout": 3, "paint": 4}
	last := -1
	for _, s := range p.Main {
		r, ok := rank[s.Kind]
		if !ok {
			t.Fatalf("unknown phase %q", s.Kind)
		}
		if r < last {
			t.Fatalf("phase %q out of order", s.Kind)
		}
		last = r
	}
}

func TestWorkScalesWithComplexity(t *testing.T) {
	small := planFor(t, "Alipay")
	big := planFor(t, "Aliexpress")
	if big.MainOps() < 4*small.MainOps() {
		t.Fatalf("Aliexpress main ops %d not >> Alipay %d", big.MainOps(), small.MainOps())
	}
	if big.TotalOps() <= big.MainOps() {
		t.Fatal("total must include helper thread")
	}
}

func TestImageHeavyPageLoadsHelper(t *testing.T) {
	imgur := planFor(t, "Imgur")
	twitter := planFor(t, "Twitter")
	var imgurHelper, twitterHelper int64
	for _, s := range imgur.Helper {
		imgurHelper += s.Ops
	}
	for _, s := range twitter.Helper {
		twitterHelper += s.Ops
	}
	if imgurHelper < 3*twitterHelper {
		t.Fatalf("Imgur helper %d not >> Twitter helper %d", imgurHelper, twitterHelper)
	}
	if imgur.ImageBytes < 20<<20 {
		t.Fatalf("Imgur decoded payload = %d bytes, implausibly small", imgur.ImageBytes)
	}
}

func TestOpsAndLinesConsistency(t *testing.T) {
	p := planFor(t, "MSN")
	for _, s := range append(append([]workload.Segment{}, p.Main...), p.Helper...) {
		if s.Ops < 0 || s.Lines < 0 {
			t.Fatalf("negative work in %+v", s)
		}
		if s.Lines > 0 && s.FootprintBytes < workload.LineBytes {
			t.Fatalf("footprint too small in %+v", s)
		}
	}
	// Lines must be in a plausible ops/line band (50..1000) overall.
	var ops, lines int64
	for _, s := range p.Main {
		ops += s.Ops
		lines += s.Lines
	}
	ratio := float64(ops) / float64(lines)
	if ratio < 50 || ratio > 1000 {
		t.Fatalf("ops/line = %v, outside plausible band", ratio)
	}
}

func TestChunking(t *testing.T) {
	// Segments must be numerous enough for 100 ms governor intervals to
	// observe phase progress.
	p := planFor(t, "ESPN")
	if len(p.Main) < 50 {
		t.Fatalf("only %d main segments; too coarse for interval control", len(p.Main))
	}
	// Total ops preserved across chunking: compare two chunk sizes.
	spec, _ := webgen.ByName("ESPN")
	doc, _ := webdoc.Parse(spec.HTML())
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.ChunkNodes = 17
	a, _ := BuildPlan(cfgA, doc)
	b, _ := BuildPlan(cfgB, doc)
	if a.MainOps() != b.MainOps() {
		t.Fatalf("chunking changed total ops: %d vs %d", a.MainOps(), b.MainOps())
	}
}

func TestSources(t *testing.T) {
	p := planFor(t, "CNN")
	src := p.MainSource()
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != len(p.Main) {
		t.Fatalf("source yielded %d segments, plan has %d", n, len(p.Main))
	}
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Fatal("reset source must restart")
	}
	if p.HelperSource().Name() != "render-helper" {
		t.Fatal("helper source name wrong")
	}
}

func TestDeterministicPlans(t *testing.T) {
	a := planFor(t, "BBC")
	b := planFor(t, "BBC")
	if len(a.Main) != len(b.Main) || a.MainOps() != b.MainOps() {
		t.Fatal("plans must be deterministic")
	}
	for i := range a.Main {
		if a.Main[i] != b.Main[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestUndeclaredImageFallback(t *testing.T) {
	doc, _ := webdoc.Parse(`<div><img src="x.jpg"></div>`)
	p, err := BuildPlan(DefaultConfig(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if p.ImageBytes != 24<<10 {
		t.Fatalf("undeclared image bytes = %d, want 24KB nominal", p.ImageBytes)
	}
}

func TestHighComplexityPagesHaveMoreWork(t *testing.T) {
	// Every high-complexity page must out-work every low-complexity
	// page on the main thread — the basis of Table III's classes.
	var lowMax, highMin int64 = 0, 1 << 62
	var lowName, highName string
	for _, s := range webgen.Specs() {
		p := planFor(t, s.Name)
		// Imgur's complexity is carried by its helper thread (image
		// decode), so compare effective critical path: max(main, helper).
		work := p.MainOps()
		var helper int64
		for _, seg := range p.Helper {
			helper += seg.Ops
		}
		if helper > work {
			work = helper
		}
		if s.Class == webgen.LowComplexity && work > lowMax {
			lowMax, lowName = work, s.Name
		}
		if s.Class == webgen.HighComplexity && work < highMin {
			highMin, highName = work, s.Name
		}
	}
	if highMin <= lowMax {
		t.Fatalf("class overlap: low page %s (%d ops) >= high page %s (%d ops)",
			lowName, lowMax, highName, highMin)
	}
}

func TestStyleCostDrivenByMatching(t *testing.T) {
	// Two documents with identical node counts but different rule-match
	// volumes must differ in style-phase work.
	mk := func(matching bool) int64 {
		cls := "nomatch"
		if matching {
			cls = "hot"
		}
		html := `<style>.hot{margin:1px;padding:2px}</style><body>`
		for i := 0; i < 200; i++ {
			html += `<div class="` + cls + `">x</div>`
		}
		html += "</body>"
		doc, err := webdoc.Parse(html)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildPlan(DefaultConfig(), doc)
		if err != nil {
			t.Fatal(err)
		}
		var styleOps int64
		for _, s := range p.Main {
			if s.Kind == "style" {
				styleOps += s.Ops
			}
		}
		if matching && p.StyleMatches.Matches != 200 {
			t.Fatalf("matches = %d, want 200", p.StyleMatches.Matches)
		}
		return styleOps
	}
	hot, cold := mk(true), mk(false)
	if hot <= cold {
		t.Fatalf("matching page style ops %d must exceed non-matching %d", hot, cold)
	}
}

func TestCorpusStyleMatchVolume(t *testing.T) {
	// Generated pages carry one matching class rule per classed element;
	// the match pass must find a substantial volume.
	p := planFor(t, "Reddit")
	if p.StyleMatches.Matches < p.Features.Elements/4 {
		t.Fatalf("matches = %d for %d elements; corpus styling broken",
			p.StyleMatches.Matches, p.Features.Elements)
	}
	if p.StyleMatches.Declarations < p.StyleMatches.Matches {
		t.Fatal("webgen rules carry 3 declarations each")
	}
}
