// Package render models the browser rendering engine: it turns a
// parsed HTML document into the compute/memory work of loading the
// page. Following the execution flow in the paper's Section II-A, the
// pipeline is parse (tokenize + DOM build + script execution), style
// (CSS rule resolution over the DOM), layout (geometry over the render
// tree), and paint (rasterization) — with image decoding running on the
// browser's second thread, matching the paper's dual-core Firefox
// configuration.
//
// The engine derives all work from the document itself (node counts,
// attribute counts, text volume, declared image payloads), so the
// relationship the paper's regression models exploit — load time
// dominated by DOM nodes, class/href attributes, a/div tags — emerges
// from the same mechanism rather than being hard-coded.
package render

import (
	"errors"
	"strconv"

	"dora/internal/webdoc"
	"dora/internal/workload"
)

// Region base addresses keep the browser's data structures from
// aliasing each other (or the co-runners) in the cache simulation.
const (
	htmlBase   = 0x1000_0000
	domBase    = 0x2000_0000
	styleBase  = 0x3000_0000
	layoutBase = 0x4000_0000
	paintBase  = 0x5000_0000
	imageBase  = 0x6000_0000
	heapBase   = 0x7000_0000
)

// Config holds the engine's cost model constants. Defaults are
// calibrated so the webgen corpus reproduces the paper's Table III load
// time classes on the simulated SoC (low pages < 2 s, high pages > 2 s,
// alone at 2.265 GHz).
type Config struct {
	// Per-phase instruction costs.
	ParseOpsPerNode   float64
	ParseOpsPerByte   float64 // per HTML source byte
	ScriptOpsPerByte  float64 // per inline script byte (execution)
	StyleOpsPerNode   float64
	StyleOpsPerRule   float64 // per parsed style rule (parsing cost)
	StyleOpsPerMatch  float64 // per element-rule selector match
	StyleOpsPerDecl   float64 // per declaration applied
	LayoutOpsPerNode  float64
	LayoutDepthFactor float64 // extra layout cost per unit tree depth
	PaintOpsPerNode   float64
	DecodeOpsPerByte  float64 // image decoding (helper thread)

	// Memory behaviour: instructions per cache-line touch, per phase.
	ParseOpsPerLine  float64
	ScriptOpsPerLine float64
	StyleOpsPerLine  float64
	LayoutOpsPerLine float64
	PaintOpsPerLine  float64
	DecodeOpsPerLine float64

	// Data structure sizing.
	DOMNodeBytes    int64 // DOM footprint per node
	LayoutNodeBytes int64 // render tree footprint per node
	StyleRuleBytes  int64 // style structure footprint per rule
	PaintTileBytes  int64 // rasterizer working set (tile buffers)
	ScriptHeapScale int64 // JS heap footprint per script byte

	// Per-phase IPC when not memory stalled.
	ParseIPC, ScriptIPC, StyleIPC, LayoutIPC, PaintIPC, DecodeIPC float64

	// ChunkNodes controls segment granularity: one segment per this
	// many DOM nodes, so governors observe a stream, not one blob.
	ChunkNodes int
}

// DefaultConfig returns the calibrated cost model.
func DefaultConfig() Config {
	return Config{
		ParseOpsPerNode:   150_000,
		ParseOpsPerByte:   30,
		ScriptOpsPerByte:  3_000,
		StyleOpsPerNode:   237_000,
		StyleOpsPerRule:   30_000,
		StyleOpsPerMatch:  30_000,
		StyleOpsPerDecl:   3_000,
		LayoutOpsPerNode:  450_000,
		LayoutDepthFactor: 0.012,
		PaintOpsPerNode:   350_000,
		DecodeOpsPerByte:  120,

		ParseOpsPerLine:  180,
		ScriptOpsPerLine: 300,
		StyleOpsPerLine:  200,
		LayoutOpsPerLine: 110,
		PaintOpsPerLine:  160,
		DecodeOpsPerLine: 100,

		DOMNodeBytes:    320,
		LayoutNodeBytes: 256,
		StyleRuleBytes:  512,
		PaintTileBytes:  512 << 10,
		ScriptHeapScale: 4,

		ParseIPC:  1.6,
		ScriptIPC: 1.3,
		StyleIPC:  1.5,
		LayoutIPC: 1.2,
		PaintIPC:  1.8,
		DecodeIPC: 1.9,

		ChunkNodes: 96,
	}
}

// Plan is the derived work of loading one page.
type Plan struct {
	Features webdoc.Features
	// StyleMatches summarizes the selector-matching pass that costed
	// the style phase.
	StyleMatches webdoc.MatchStats
	// Main is the critical-path render thread's segment stream.
	Main []workload.Segment
	// Helper is the second browser thread (image decoding).
	Helper []workload.Segment
	// ImageBytes is the total decoded image payload.
	ImageBytes int64
}

// TotalOps sums instructions over both threads.
func (p *Plan) TotalOps() int64 {
	var t int64
	for _, s := range p.Main {
		t += s.Ops
	}
	for _, s := range p.Helper {
		t += s.Ops
	}
	return t
}

// MainOps sums the critical-path thread's instructions.
func (p *Plan) MainOps() int64 {
	var t int64
	for _, s := range p.Main {
		t += s.Ops
	}
	return t
}

// BuildPlan derives the load workload for a parsed document.
func BuildPlan(cfg Config, doc *webdoc.Document) (*Plan, error) {
	if doc == nil || doc.Root == nil {
		return nil, errors.New("render: nil document")
	}
	if cfg.ChunkNodes <= 0 {
		return nil, errors.New("render: ChunkNodes must be positive")
	}
	f := webdoc.Extract(doc)
	if f.DOMNodes == 0 {
		return nil, errors.New("render: empty document")
	}

	scriptBytes := int64(0)
	imageBytes := int64(0)
	doc.Root.Walk(func(n *webdoc.Node) {
		switch {
		case n.Type == webdoc.ElementNode && n.Tag == "script":
			for _, c := range n.Children {
				if c.Type == webdoc.TextNode {
					scriptBytes += int64(len(c.Text))
				}
			}
		case n.Type == webdoc.ElementNode && n.Tag == "img":
			if v, ok := n.Attr("data-kb"); ok {
				if kb, err := strconv.Atoi(v); err == nil && kb > 0 {
					imageBytes += int64(kb) << 10
				}
			} else {
				imageBytes += 24 << 10 // undeclared images: nominal 24 KB
			}
		}
	})
	// Parse the page's stylesheets and run real selector matching; the
	// match statistics drive the style phase's cost, as in an actual
	// style-resolution pass.
	sheet := webdoc.ParseCSS(webdoc.StyleText(doc))
	matchStats := webdoc.NewRuleIndex(sheet).MatchDocument(doc)
	styleRules := int64(len(sheet.Rules))

	nodes := int64(f.DOMNodes)
	domFootprint := nodes * cfg.DOMNodeBytes
	layoutFootprint := nodes * cfg.LayoutNodeBytes
	styleFootprint := styleRules*cfg.StyleRuleBytes + nodes*64
	heapFootprint := max(scriptBytes*cfg.ScriptHeapScale, 64<<10)

	p := &Plan{Features: f, ImageBytes: imageBytes, StyleMatches: matchStats}

	// --- Parse phase: stream the source, pointer-build the DOM.
	parseOps := int64(cfg.ParseOpsPerNode*float64(nodes) + cfg.ParseOpsPerByte*float64(doc.Bytes))
	p.emit(&p.Main, cfg, "parse", parseOps, cfg.ParseOpsPerLine, workload.Segment{
		Pattern: workload.PointerChase, Base: domBase, FootprintBytes: domFootprint, IPC: cfg.ParseIPC,
	})
	// Source streaming rides along: sequential over the HTML buffer.
	p.Main = append(p.Main, workload.Segment{
		Kind: "parse-stream", Ops: int64(doc.Bytes) / 8,
		Lines: int64(doc.Bytes) / workload.LineBytes, FootprintBytes: max(int64(doc.Bytes), workload.LineBytes),
		Pattern: workload.Sequential, Base: htmlBase, IPC: cfg.ParseIPC,
	})

	// --- Script execution: hot JS heap, random access.
	if scriptBytes > 0 {
		scriptOps := int64(cfg.ScriptOpsPerByte * float64(scriptBytes))
		p.emit(&p.Main, cfg, "script", scriptOps, cfg.ScriptOpsPerLine, workload.Segment{
			Pattern: workload.Random, Base: heapBase, FootprintBytes: heapFootprint, IPC: cfg.ScriptIPC,
		})
	}

	// --- Style resolution: DOM chase + random probes of rule tables,
	// costed by the measured match volume.
	styleOps := int64(cfg.StyleOpsPerNode*float64(nodes) +
		cfg.StyleOpsPerRule*float64(styleRules) +
		cfg.StyleOpsPerMatch*float64(matchStats.Matches) +
		cfg.StyleOpsPerDecl*float64(matchStats.Declarations))
	p.emit(&p.Main, cfg, "style", styleOps, cfg.StyleOpsPerLine, workload.Segment{
		Pattern: workload.Random, Base: styleBase, FootprintBytes: max(styleFootprint, 64<<10), IPC: cfg.StyleIPC,
	})

	// --- Layout: pointer chase over the render tree, depth-weighted.
	layoutOps := int64(cfg.LayoutOpsPerNode * float64(nodes) * (1 + cfg.LayoutDepthFactor*float64(f.MaxDepth)))
	p.emit(&p.Main, cfg, "layout", layoutOps, cfg.LayoutOpsPerLine, workload.Segment{
		Pattern: workload.PointerChase, Base: layoutBase, FootprintBytes: layoutFootprint, IPC: cfg.LayoutIPC,
	})

	// --- Paint: tile-based rasterization (L2-resident working set).
	paintOps := int64(cfg.PaintOpsPerNode * float64(nodes))
	p.emit(&p.Main, cfg, "paint", paintOps, cfg.PaintOpsPerLine, workload.Segment{
		Pattern: workload.Sequential, Base: paintBase, FootprintBytes: cfg.PaintTileBytes, IPC: cfg.PaintIPC,
	})

	// --- Helper thread: image decoding, streaming the payload.
	if imageBytes > 0 {
		decodeOps := int64(cfg.DecodeOpsPerByte * float64(imageBytes))
		p.emit(&p.Helper, cfg, "decode", decodeOps, cfg.DecodeOpsPerLine, workload.Segment{
			Pattern: workload.Sequential, Base: imageBase, FootprintBytes: imageBytes, IPC: cfg.DecodeIPC,
		})
	}
	return p, nil
}

// emit appends phase work chunked into ChunkNodes-sized segments.
func (p *Plan) emit(dst *[]workload.Segment, cfg Config, kind string, totalOps int64, opsPerLine float64, tmpl workload.Segment) {
	if totalOps <= 0 {
		return
	}
	totalLines := int64(float64(totalOps) / opsPerLine)
	chunks := int(int64(p.Features.DOMNodes)/int64(cfg.ChunkNodes)) + 1
	opsPer := totalOps / int64(chunks)
	linesPer := totalLines / int64(chunks)
	for i := 0; i < chunks; i++ {
		ops, lines := opsPer, linesPer
		if i == chunks-1 { // remainder in the last chunk
			ops = totalOps - opsPer*int64(chunks-1)
			lines = totalLines - linesPer*int64(chunks-1)
		}
		if ops <= 0 && lines <= 0 {
			continue
		}
		s := tmpl
		s.Kind = kind
		s.Ops = ops
		s.Lines = lines
		if s.FootprintBytes < workload.LineBytes {
			s.FootprintBytes = workload.LineBytes
		}
		*dst = append(*dst, s)
	}
}

// MainSource returns the critical-path thread as a workload source.
func (p *Plan) MainSource() workload.Source {
	return workload.FromSegments("render-main", p.Main)
}

// HelperSource returns the decode thread as a workload source (empty
// for pages without images).
func (p *Plan) HelperSource() workload.Source {
	return workload.FromSegments("render-helper", p.Helper)
}
