// Package corun implements the co-scheduled applications of the
// paper's Table III — the Rodinia-suite kernels used to generate
// controlled memory interference. Each kernel is a miniature but real
// implementation of the algorithm's loop structure (stencil sweeps,
// k-means passes, BFS levels over a generated graph, B+-tree probes
// over a built tree, back-propagation layer updates, Needleman-Wunsch
// anti-diagonals), emitting its compute and memory reference stream as
// workload segments. Memory intensity classes (L2 MPKI <1, 1-7, >7)
// emerge from each kernel's footprint and access pattern against the
// simulated 2 MB shared L2.
package corun

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"dora/internal/workload"
)

// Intensity is the Table III memory-intensity class.
type Intensity int

const (
	// Low intensity: L2 MPKI < 1.
	Low Intensity = iota
	// Medium intensity: L2 MPKI in [1, 7].
	Medium
	// High intensity: L2 MPKI > 7.
	High
	// None means no co-scheduled application (browser runs alone).
	None
)

// String names the intensity.
func (i Intensity) String() string {
	switch i {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case None:
		return "none"
	default:
		return fmt.Sprintf("Intensity(%d)", int(i))
	}
}

// Kernel describes one co-run application.
type Kernel struct {
	Name      string
	Intensity Intensity
	// Domain is the paper's application-domain label.
	Domain string
	// New builds a fresh (infinite) workload source for the kernel.
	New func(seed int64) workload.Source
}

// kernels is the Table III co-run application set.
var kernels = []Kernel{
	{Name: "srad", Intensity: Low, Domain: "image processing", New: newSRAD},
	{Name: "heartwall", Intensity: Low, Domain: "image processing", New: newHeartwall},
	{Name: "kmeans", Intensity: Low, Domain: "clustering analysis", New: newKMeans},
	{Name: "hotspot", Intensity: Low, Domain: "temperature management", New: newHotspot},
	{Name: "srad2", Intensity: Medium, Domain: "image processing", New: newSRAD2},
	{Name: "bfs", Intensity: Medium, Domain: "graph traversal", New: newBFS},
	{Name: "b+tree", Intensity: Medium, Domain: "tree traversal", New: newBTree},
	{Name: "backprop", Intensity: High, Domain: "sensor data analysis", New: newBackprop},
	{Name: "needleman-wunsch", Intensity: High, Domain: "bioinformatics", New: newNW},
}

// Kernels returns the full co-run application set.
func Kernels() []Kernel { return append([]Kernel(nil), kernels...) }

// ByName looks up a kernel (case-insensitive).
func ByName(name string) (Kernel, error) {
	for _, k := range kernels {
		if strings.EqualFold(k.Name, name) {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("corun: unknown kernel %q", name)
}

// ByIntensity returns the kernels in one intensity class.
func ByIntensity(in Intensity) []Kernel {
	var out []Kernel
	for _, k := range kernels {
		if k.Intensity == in {
			out = append(out, k)
		}
	}
	return out
}

// Representative returns the canonical kernel for an intensity class,
// used by single-workload figures.
func Representative(in Intensity) (Kernel, error) {
	switch in {
	case Low:
		return ByName("kmeans")
	case Medium:
		return ByName("bfs")
	case High:
		return ByName("backprop")
	default:
		return Kernel{}, fmt.Errorf("corun: no representative for %v", in)
	}
}

// PickFor deterministically selects a kernel of the given intensity for
// the idx-th workload, rotating through the class members so the
// 54-combination campaign exercises every kernel.
func PickFor(in Intensity, idx int) (Kernel, error) {
	ks := ByIntensity(in)
	if len(ks) == 0 {
		return Kernel{}, fmt.Errorf("corun: no kernels with intensity %v", in)
	}
	if idx < 0 {
		idx = -idx
	}
	return ks[idx%len(ks)], nil
}

// regionBase derives a distinct address region per kernel so co-runner
// data never aliases browser structures in the shared cache.
func regionBase(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return 0x1_0000_0000 + (h.Sum64()%64)<<28
}

// --- Low intensity ------------------------------------------------

// newKMeans: k-means over 24k points x 8 float32 dims (768 KB): the
// point array streams sequentially each pass and fits the shared L2, so
// steady-state L2 misses are rare.
func newKMeans(seed int64) workload.Source {
	const (
		points = 24000
		dims   = 8
		k      = 12
	)
	footprint := int64(points * dims * 4)
	base := regionBase("kmeans")
	rng := rand.New(rand.NewSource(seed))
	return &phaseLoop{
		name: "kmeans",
		make: func(emit func(workload.Segment)) {
			iters := 15 + rng.Intn(10) // convergence varies per run
			for it := 0; it < iters; it++ {
				// Assignment pass: distance to every centroid.
				emit(workload.Segment{
					Kind: "kmeans-assign", Ops: points * dims * k * 2,
					Lines: footprint / workload.LineBytes, FootprintBytes: footprint,
					Pattern: workload.Sequential, Base: base, IPC: 1.9,
				})
				// Centroid update pass.
				emit(workload.Segment{
					Kind: "kmeans-update", Ops: points * dims * 3,
					Lines: footprint / workload.LineBytes, FootprintBytes: footprint,
					Pattern: workload.Sequential, Base: base, IPC: 1.8,
				})
			}
		},
	}
}

// newHotspot: 400x400 2-array thermal stencil (1.28 MB), iterative
// sweeps; fits L2.
func newHotspot(seed int64) workload.Source {
	const rows, cols = 400, 400
	footprint := int64(rows * cols * 4 * 2)
	base := regionBase("hotspot")
	_ = seed
	return &phaseLoop{
		name: "hotspot",
		make: func(emit func(workload.Segment)) {
			cells := int64(rows * cols)
			emit(workload.Segment{
				Kind: "hotspot-sweep", Ops: cells * 14,
				Lines: footprint / workload.LineBytes, FootprintBytes: footprint,
				Pattern: workload.Sequential, Base: base, IPC: 1.7,
			})
		},
	}
}

// newSRAD: speckle-reducing anisotropic diffusion on a 400x448 image
// (1.43 MB across two arrays); two stencil passes per iteration.
func newSRAD(seed int64) workload.Source {
	const rows, cols = 400, 448
	footprint := int64(rows * cols * 4 * 2)
	base := regionBase("srad")
	_ = seed
	return &phaseLoop{
		name: "srad",
		make: func(emit func(workload.Segment)) {
			cells := int64(rows * cols)
			for pass := 0; pass < 2; pass++ {
				emit(workload.Segment{
					Kind: "srad-pass", Ops: cells * 18,
					Lines: footprint / workload.LineBytes, FootprintBytes: footprint,
					Pattern: workload.Sequential, Base: base, IPC: 1.6,
				})
			}
		},
	}
}

// newHeartwall: frame-based cardiac image tracking — a burst of
// template matching per frame (488 KB image, fits L2) followed by the
// inter-frame gap, giving the kernel a sub-100% core utilization.
func newHeartwall(seed int64) workload.Source {
	const frameBytes = 656 * 744
	base := regionBase("heartwall")
	rng := rand.New(rand.NewSource(seed))
	return &phaseLoop{
		name: "heartwall",
		make: func(emit func(workload.Segment)) {
			ops := int64(9_000_000 + rng.Intn(2_000_000))
			emit(workload.Segment{
				Kind: "heartwall-frame", Ops: ops,
				Lines: frameBytes / workload.LineBytes * 3, FootprintBytes: frameBytes,
				Pattern: workload.Sequential, Base: base, IPC: 1.8,
				IdleNs: 3_000_000, // waiting for the next frame
			})
		},
	}
}

// --- Medium intensity ----------------------------------------------

// newSRAD2: the larger srad variant — 1024x1024 across two arrays
// (8 MB): the sweep streams through far more than the L2 holds, so a
// steady fraction of touches miss.
func newSRAD2(seed int64) workload.Source {
	const rows, cols = 1024, 1024
	footprint := int64(rows * cols * 4 * 2)
	base := regionBase("srad2")
	_ = seed
	return &phaseLoop{
		name: "srad2",
		make: func(emit func(workload.Segment)) {
			cells := int64(rows * cols)
			for pass := 0; pass < 2; pass++ {
				emit(workload.Segment{
					Kind: "srad2-pass", Ops: cells * 22,
					Lines: cells / 16, FootprintBytes: footprint,
					Pattern: workload.Sequential, Base: base, IPC: 1.6,
				})
			}
		},
	}
}

// bfsSource runs breadth-first search levels over a synthetic graph
// whose level structure is computed once, for real, at construction.
type bfsSource struct {
	name   string
	levels []int64 // frontier size per level
	base   uint64
	adjFP  int64
	level  int
}

func newBFS(seed int64) workload.Source {
	const n = 600_000
	const avgDeg = 8
	// Build the level structure of a random graph by simulating the
	// BFS frontier expansion (branching process capped by unvisited
	// population) — the real shape of BFS work over a random graph.
	rng := rand.New(rand.NewSource(seed))
	var levels []int64
	unvisited := int64(n - 1)
	frontier := int64(1)
	for frontier > 0 && unvisited > 0 {
		levels = append(levels, frontier)
		reach := frontier * avgDeg
		// Each edge hits an unvisited node with probability
		// unvisited/n; sample the next frontier.
		next := int64(0)
		p := float64(unvisited) / float64(n)
		for i := int64(0); i < reach && next < unvisited; i++ {
			if rng.Float64() < p {
				next++
			}
		}
		if next > unvisited {
			next = unvisited
		}
		unvisited -= next
		frontier = next
	}
	return &bfsSource{
		name:   "bfs",
		levels: levels,
		base:   regionBase("bfs"),
		adjFP:  int64(n * (avgDeg*4 + 8)), // adjacency + node arrays ~24 MB
	}
}

func (b *bfsSource) Name() string { return b.name }

func (b *bfsSource) Next() (workload.Segment, bool) {
	if len(b.levels) == 0 {
		return workload.Segment{}, false
	}
	frontier := b.levels[b.level%len(b.levels)]
	b.level++
	edges := frontier * 8
	return workload.Segment{
		Kind: "bfs-level", Ops: edges * 25,
		Lines: edges / 8, FootprintBytes: b.adjFP,
		Pattern: workload.Random, Base: b.base, IPC: 1.1,
	}, true
}

func (b *bfsSource) Reset() { b.level = 0 }

// btreeSource probes a B+-tree built (for real) at construction: the
// root and internal levels stay cache-resident, leaf visits scatter
// over a footprint far larger than the L2.
type btreeSource struct {
	depth     int
	innerFP   int64
	leafFP    int64
	base      uint64
	batchOps  int64
	batchKeys int64
	leafNext  bool // alternates inner-probe / leaf-visit segments
}

func newBTree(seed int64) workload.Source {
	const keys = 1_000_000
	const fanout = 64
	// Build the tree level sizes bottom-up, as a bulk load would:
	// leaves hold the keys; the levels above them are the (small,
	// cache-resident) inner index.
	leaves := keys / fanout
	level := leaves / fanout // first inner level
	depth := 2               // leaf + its parent level
	innerNodes := 0
	for level > 1 {
		innerNodes += level
		level /= fanout
		depth++
	}
	innerNodes++ // root
	_ = seed
	return &btreeSource{
		depth:     depth,
		innerFP:   int64(innerNodes) * 1024, // 1 KB nodes
		leafFP:    int64(keys) * 16,         // 16 B entries -> 16 MB
		base:      regionBase("b+tree"),
		batchKeys: 1000,
		batchOps:  1000 * 64 * 3, // fanout-64 binary probes per level
	}
}

func (b *btreeSource) Name() string { return "b+tree" }

func (b *btreeSource) Next() (workload.Segment, bool) {
	// One batch of searches = an inner-probe segment (cache-resident
	// upper levels) followed by a leaf-visit segment (16 MB scatter).
	if !b.leafNext {
		b.leafNext = true
		return workload.Segment{
			Kind: "btree-inner", Ops: b.batchOps * int64(b.depth) / (int64(b.depth) + 1),
			Lines: b.batchKeys * int64(b.depth) / 2, FootprintBytes: b.innerFP,
			Pattern: workload.Random, Base: b.base, IPC: 1.3,
		}, true
	}
	b.leafNext = false
	return workload.Segment{
		Kind: "btree-leaf", Ops: b.batchOps / (int64(b.depth) + 1) * 2,
		Lines: b.batchKeys, FootprintBytes: b.leafFP,
		Pattern: workload.Random, Base: b.base + 0x400_0000, IPC: 1.2,
	}, true
}

func (b *btreeSource) Reset() { b.leafNext = false }

// --- High intensity -------------------------------------------------

// newBackprop: neural back-propagation with a 4096x2048 weight matrix
// (32 MB): every pass streams all weights twice (forward + update) with
// few operations per element — heavy, steady DRAM traffic.
func newBackprop(seed int64) workload.Source {
	const in, out = 4096, 2048
	weights := int64(in) * int64(out) * 4
	base := regionBase("backprop")
	_ = seed
	return &phaseLoop{
		name: "backprop",
		make: func(emit func(workload.Segment)) {
			elems := int64(in) * int64(out)
			emit(workload.Segment{
				Kind: "backprop-forward", Ops: elems * 4,
				Lines: weights / workload.LineBytes, FootprintBytes: weights,
				Pattern: workload.Sequential, Base: base, IPC: 1.5,
			})
			emit(workload.Segment{
				Kind: "backprop-update", Ops: elems * 5,
				Lines: weights / workload.LineBytes, FootprintBytes: weights,
				Pattern: workload.Sequential, Base: base, IPC: 1.4,
			})
		},
	}
}

// newNW: Needleman-Wunsch sequence alignment over a 4600x4600 score
// matrix (~85 MB), processed in anti-diagonal bands; the column
// neighbour of each cell defeats row locality, modelled as strided
// touches across the matrix.
func newNW(seed int64) workload.Source {
	const n = 4600
	footprint := int64(n) * int64(n) * 4
	base := regionBase("needleman-wunsch")
	_ = seed
	return &phaseLoop{
		name: "needleman-wunsch",
		make: func(emit func(workload.Segment)) {
			// Process the matrix as ~n/16 bands; each band touches its
			// cells plus the previous band's row.
			const bandRows = 16
			bands := n / bandRows
			cellsPerBand := int64(bandRows * n)
			for band := 0; band < bands; band++ {
				emit(workload.Segment{
					Kind: "nw-band", Ops: cellsPerBand * 9,
					Lines: cellsPerBand / 12, FootprintBytes: footprint,
					Pattern: workload.Strided, StrideLines: 289, // column-wise hops
					Base: base, IPC: 1.2,
				})
			}
		},
	}
}

// phaseLoop regenerates a list of segments each cycle via make and
// replays them forever.
type phaseLoop struct {
	name string
	make func(emit func(workload.Segment))
	segs []workload.Segment
	pos  int
}

func (p *phaseLoop) Name() string { return p.name }

func (p *phaseLoop) Next() (workload.Segment, bool) {
	if p.pos >= len(p.segs) {
		p.segs = p.segs[:0]
		p.make(func(s workload.Segment) { p.segs = append(p.segs, s) })
		p.pos = 0
		if len(p.segs) == 0 {
			return workload.Segment{}, false
		}
	}
	s := p.segs[p.pos]
	p.pos++
	return s, true
}

func (p *phaseLoop) Reset() { p.pos = len(p.segs) }
