package corun

import (
	"testing"

	"dora/internal/workload"
)

func TestKernelSet(t *testing.T) {
	ks := Kernels()
	if len(ks) != 9 {
		t.Fatalf("kernel count = %d, want 9 (Table III)", len(ks))
	}
	counts := map[Intensity]int{}
	for _, k := range ks {
		counts[k.Intensity]++
	}
	if counts[Low] != 4 || counts[Medium] != 3 || counts[High] != 2 {
		t.Fatalf("intensity split = %v, want 4/3/2", counts)
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("KMEANS")
	if err != nil || k.Name != "kmeans" {
		t.Fatalf("ByName = %+v, %v", k, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown kernel must error")
	}
}

func TestIntensityString(t *testing.T) {
	for in, want := range map[Intensity]string{Low: "low", Medium: "medium", High: "high", None: "none"} {
		if in.String() != want {
			t.Errorf("%d.String() = %q", in, in.String())
		}
	}
	if Intensity(77).String() == "" {
		t.Error("unknown intensity must format")
	}
}

func TestRepresentative(t *testing.T) {
	for in, want := range map[Intensity]string{Low: "kmeans", Medium: "bfs", High: "backprop"} {
		k, err := Representative(in)
		if err != nil || k.Name != want {
			t.Fatalf("Representative(%v) = %+v, %v", in, k, err)
		}
	}
	if _, err := Representative(None); err == nil {
		t.Fatal("Representative(None) must error")
	}
}

func TestPickForRotates(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		k, err := PickFor(Low, i)
		if err != nil {
			t.Fatal(err)
		}
		if k.Intensity != Low {
			t.Fatalf("PickFor(Low,%d) returned %v intensity", i, k.Intensity)
		}
		seen[k.Name] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d low kernels, want all 4", len(seen))
	}
	// Negative index must not panic.
	if _, err := PickFor(Medium, -3); err != nil {
		t.Fatal(err)
	}
	if _, err := PickFor(None, 0); err == nil {
		t.Fatal("PickFor(None) must error")
	}
}

func TestAllKernelsProduceValidInfiniteStreams(t *testing.T) {
	for _, k := range Kernels() {
		src := k.New(42)
		if src.Name() == "" {
			t.Fatalf("%s: empty source name", k.Name)
		}
		var ops, lines int64
		for i := 0; i < 500; i++ {
			seg, ok := src.Next()
			if !ok {
				t.Fatalf("%s: stream ended at %d; co-runners must be infinite", k.Name, i)
			}
			if err := seg.Validate(); err != nil {
				t.Fatalf("%s: invalid segment %+v: %v", k.Name, seg, err)
			}
			ops += seg.Ops
			lines += seg.Lines
		}
		if ops <= 0 || lines <= 0 {
			t.Fatalf("%s: no work produced (ops=%d lines=%d)", k.Name, ops, lines)
		}
		src.Reset()
		if _, ok := src.Next(); !ok {
			t.Fatalf("%s: reset stream must restart", k.Name)
		}
	}
}

// opsPerLine and footprint are the first-order determinants of L2 MPKI
// on the simulator; check the classes are structurally separable before
// the full SoC-level classification test (Table III bench).
func TestIntensityStructure(t *testing.T) {
	const l2 = 2 << 20
	type agg struct {
		opsPerMissLine float64 // ops per line touch in L2-exceeding footprints
		maxFP          int64
	}
	measure := func(k Kernel) agg {
		src := k.New(1)
		var ops, missLines, fp int64
		for i := 0; i < 300; i++ {
			seg, ok := src.Next()
			if !ok {
				break
			}
			ops += seg.Ops
			// Only touches to footprints larger than the L2 can miss
			// steadily; L2-resident structures stop missing once warm.
			if seg.FootprintBytes > l2 {
				missLines += seg.Lines
			}
			if seg.FootprintBytes > fp {
				fp = seg.FootprintBytes
			}
		}
		opml := float64(0)
		if missLines > 0 {
			opml = float64(ops) / float64(missLines)
		}
		return agg{opml, fp}
	}
	for _, k := range Kernels() {
		a := measure(k)
		switch k.Intensity {
		case Low:
			// Low kernels' dominant footprints fit the 2 MB L2.
			if a.maxFP > l2 {
				t.Errorf("%s: low-intensity kernel footprint %d exceeds L2", k.Name, a.maxFP)
			}
		case Medium, High:
			if a.maxFP <= l2 {
				t.Errorf("%s: %v kernel footprint %d fits L2, cannot generate misses", k.Name, k.Intensity, a.maxFP)
			}
		}
		// MPKI ~ 1000/opsPerMissLine when big footprints mostly miss.
		if k.Intensity == High && (a.opsPerMissLine <= 0 || a.opsPerMissLine > 130) {
			t.Errorf("%s: high-intensity kernel ops/miss-line %v too high for MPKI > 7", k.Name, a.opsPerMissLine)
		}
		if k.Intensity == Medium && (a.opsPerMissLine < 140 || a.opsPerMissLine > 1000) {
			t.Errorf("%s: medium kernel ops/miss-line %v outside MPKI 1-7 band", k.Name, a.opsPerMissLine)
		}
	}
}

func TestHeartwallHasIdleGaps(t *testing.T) {
	src, _ := ByName("heartwall")
	s := src.New(1)
	seg, ok := s.Next()
	if !ok || seg.IdleNs <= 0 {
		t.Fatalf("heartwall must have frame gaps, got %+v", seg)
	}
}

func TestDistinctRegions(t *testing.T) {
	// Kernels must not share address regions with each other (first
	// 300 segments).
	bases := map[string]map[uint64]bool{}
	for _, k := range Kernels() {
		src := k.New(7)
		bases[k.Name] = map[uint64]bool{}
		for i := 0; i < 50; i++ {
			seg, ok := src.Next()
			if !ok {
				break
			}
			bases[k.Name][seg.Base] = true
		}
	}
	for a, ba := range bases {
		for b, bb := range bases {
			if a >= b {
				continue
			}
			for addr := range ba {
				if bb[addr] {
					t.Fatalf("kernels %s and %s share base %#x", a, b, addr)
				}
			}
		}
	}
}

func TestBFSLevelsAreRealistic(t *testing.T) {
	src := newBFS(3).(*bfsSource)
	if len(src.levels) < 3 {
		t.Fatalf("BFS produced %d levels; random graph should have several", len(src.levels))
	}
	var total int64
	peak := int64(0)
	for _, f := range src.levels {
		total += f
		if f > peak {
			peak = f
		}
	}
	if total > 600_000 {
		t.Fatalf("BFS visited %d nodes > graph size", total)
	}
	if peak < 10_000 {
		t.Fatalf("BFS peak frontier %d too small for a connected random graph", peak)
	}
	// Frontier expands then contracts (unimodal up to noise): first
	// level is 1, peak is interior.
	if src.levels[0] != 1 {
		t.Fatal("BFS must start from a single source")
	}
}

func TestBTreeAlternation(t *testing.T) {
	src := newBTree(1)
	a, _ := src.Next()
	b, _ := src.Next()
	c, _ := src.Next()
	if a.Kind != "btree-inner" || b.Kind != "btree-leaf" || c.Kind != "btree-inner" {
		t.Fatalf("alternation broken: %s, %s, %s", a.Kind, b.Kind, c.Kind)
	}
	if a.FootprintBytes >= b.FootprintBytes {
		t.Fatal("inner footprint must be smaller than leaf footprint")
	}
	if workload.LineBytes*b.Lines <= 0 {
		t.Fatal("leaf visits must touch lines")
	}
}

func TestDeterminism(t *testing.T) {
	for _, k := range Kernels() {
		a, b := k.New(5), k.New(5)
		for i := 0; i < 100; i++ {
			sa, oka := a.Next()
			sb, okb := b.Next()
			if oka != okb || sa != sb {
				t.Fatalf("%s: same seed diverged at segment %d", k.Name, i)
			}
		}
	}
}
