package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v", m.At(1, 1))
	}
	m.Set(2, 0, 9)
	if m.Row(2)[0] != 9 {
		t.Fatal("Set/Row mismatch")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows must error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestMulTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %+v", at)
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("incompatible Mul must error")
	}
}

func TestSolveExact(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("singular Solve err = %v, want ErrSingular", err)
	}
	rect, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := Solve(rect, []float64{1}); err == nil {
		t.Fatal("non-square Solve must error")
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// Square full-rank: LS solution equals exact solution.
	a, _ := FromRows([][]float64{{3, 1}, {1, 2}})
	x, err := SolveLeastSquares(a, []float64{9, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("x = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy-free samples: must recover exactly.
	rows := [][]float64{}
	b := []float64{}
	for x := 0.0; x < 10; x++ {
		rows = append(rows, []float64{1, x})
		b = append(b, 1+2*x)
	}
	a, _ := FromRows(rows)
	coef, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-1) > 1e-9 || math.Abs(coef[1]-2) > 1e-9 {
		t.Fatalf("coef = %v, want [1 2]", coef)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space of A.
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(40, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64() * 10
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	res := make([]float64, len(b))
	for i := range b {
		res[i] = b[i] - ax[i]
	}
	at := a.Transpose()
	g, _ := at.MulVec(res)
	if Norm2(g) > 1e-8*Norm2(b) {
		t.Fatalf("residual not orthogonal to columns: |A^T r| = %v", Norm2(g))
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("underdetermined must error")
	}
	a2 := NewMatrix(3, 2)
	if _, err := SolveLeastSquares(a2, []float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	// Rank-deficient: duplicate columns.
	a3, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a3, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient must error")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Solve(A, A*x) recovers x for random well-conditioned A.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the matrix well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+3)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 5
		}
		b, _ := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: least squares and exact solve agree on square systems.
func TestLeastSquaresMatchesSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err1 := Solve(a, b)
		x2, err2 := SolveLeastSquares(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
