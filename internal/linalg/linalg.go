// Package linalg implements the dense linear algebra needed by the
// regression models in the DORA reproduction: a small row-major matrix
// type, Householder QR factorization, and linear least squares. It is
// self-contained (stdlib only) and tuned for the modest problem sizes
// that arise when fitting response-surface models (hundreds of rows,
// tens of columns).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-valued Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: no rows")
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), c)
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m * x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dim mismatch: %d vs %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: Mul dim mismatch: %dx%d * %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			orow := other.Row(k)
			dst := out.Row(i)
			for j, v := range orow {
				dst[j] += a * v
			}
		}
	}
	return out, nil
}

// ErrSingular indicates a (numerically) rank-deficient system.
var ErrSingular = errors.New("linalg: singular or rank-deficient matrix")

// SolveLeastSquares solves min_x ||A x - b||_2 via Householder QR.
// A must have Rows >= Cols and full column rank; otherwise ErrSingular
// is returned. A and b are not modified.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: b has %d entries, A has %d rows", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, errors.New("linalg: underdetermined system (rows < cols)")
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	qtb := append([]float64(nil), b...)

	// Householder QR: transform R in place, apply reflectors to qtb.
	for k := 0; k < n; k++ {
		// Column norm below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, ErrSingular
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		// v = x - alpha*e1 (stored temporarily).
		v := make([]float64, m-k)
		v[0] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		vnorm2 := 0.0
		for _, x := range v {
			vnorm2 += x * x
		}
		if vnorm2 == 0 {
			return nil, ErrSingular
		}
		// Apply H = I - 2 v v^T / (v^T v) to R[k:, k:] and qtb[k:].
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i-k])
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += v[i-k] * qtb[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			qtb[i] -= f * v[i-k]
		}
	}

	// Back-substitute R x = Q^T b on the top n x n triangle.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves the square linear system A x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Solve requires a square matrix")
	}
	if a.Rows != len(b) {
		return nil, errors.New("linalg: Solve dimension mismatch")
	}
	n := a.Rows
	aug := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pv := col, math.Abs(aug.At(col, col))
		for i := col + 1; i < n; i++ {
			if v := math.Abs(aug.At(i, col)); v > pv {
				piv, pv = i, v
			}
		}
		if pv < 1e-14 {
			return nil, ErrSingular
		}
		if piv != col {
			ri, rc := aug.Row(piv), aug.Row(col)
			for j := range ri {
				ri[j], rc[j] = rc[j], ri[j]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		d := aug.At(col, col)
		for i := col + 1; i < n; i++ {
			f := aug.At(i, col) / d
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.Set(i, j, aug.At(i, j)-f*aug.At(col, j))
			}
			x[i] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}

// Dot returns the inner product of a and b (panics on length mismatch).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
