package core

import (
	"encoding/json"
	"testing"
	"time"

	"dora/internal/dvfs"
)

// The doratrain/dorasim tools exchange trained models as JSON; the
// round trip must preserve predictions exactly.
func TestModelsJSONRoundTrip(t *testing.T) {
	m := syntheticModels(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Models
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	tab := dvfs.MSM8974()
	page := pageFor(3)
	orig, err := m.PredictAll(tab, page, 6, 0.8, 48, 3*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.PredictAll(tab, page, 6, 0.8, 48, 3*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("prediction %d changed after JSON round trip: %+v vs %+v", i, orig[i], got[i])
		}
	}
	// Governors built from deserialized models behave identically.
	g1, err := New(m, Options{Mode: ModeDORA, UseLeakage: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(&back, Options{Mode: ModeDORA, UseLeakage: true})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx(t, page, 3*time.Second, 48)
	if g1.Decide(c).FreqMHz != g2.Decide(c).FreqMHz {
		t.Fatal("decision changed after JSON round trip")
	}
}
