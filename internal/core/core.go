// Package core implements the paper's primary contribution: DORA, the
// Dynamic quality Of service, memoRy interference-Aware frequency
// governor (Algorithm 1). DORA holds statically-trained piecewise
// response-surface models for web page load time and dynamic power,
// plus the fitted Eq. (5) static/leakage power model, and at every
// decision interval enumerates the OPP table, keeps the
// deadline-feasible settings, and selects the one with the highest
// predicted PPW.
//
// The same model container also powers the paper's two hypothetical
// comparison governors: DL (deadline-only: the lowest feasible
// frequency) and EE (energy-only: maximum predicted PPW regardless of
// deadline).
package core

import (
	"errors"
	"fmt"
	"time"

	"dora/internal/clock"
	"dora/internal/dvfs"
	"dora/internal/governor"
	"dora/internal/power"
	"dora/internal/regress"
)

// FeatureNames lists the paper's Table I independent variables, in
// model-input order: the five page-complexity features X1-X5, then the
// runtime features X6 (shared-L2 MPKI of co-scheduled work), X7 (core
// frequency, GHz), X8 (memory bus frequency, MHz), and X9 (co-run core
// utilization).
func FeatureNames() []string {
	return []string{
		"dom_nodes", "class_attrs", "href_attrs", "a_tags", "div_tags",
		"l2_mpki", "core_freq_ghz", "bus_freq_mhz", "corun_util",
	}
}

// InputVector assembles the model input for a candidate OPP.
func InputVector(page []float64, mpki float64, opp dvfs.OPP, util float64) ([]float64, error) {
	if len(page) != 5 {
		return nil, fmt.Errorf("core: want 5 page features, got %d", len(page))
	}
	x := make([]float64, 0, 9)
	x = append(x, page...)
	x = append(x, mpki, opp.FreqGHz(), float64(opp.BusFreqMHz), util)
	return x, nil
}

// Piecewise holds one regression model per memory-bus frequency group,
// mirroring the paper's piecewise modelling across the core-to-bus
// frequency map.
type Piecewise struct {
	Groups map[int]*regress.Model // bus MHz -> model
}

// NewPiecewise returns an empty piecewise model.
func NewPiecewise() *Piecewise {
	return &Piecewise{Groups: map[int]*regress.Model{}}
}

// Add registers the model for a bus-frequency group.
func (p *Piecewise) Add(busMHz int, m *regress.Model) { p.Groups[busMHz] = m }

// Predict evaluates the group model for the OPP's bus tier.
func (p *Piecewise) Predict(opp dvfs.OPP, x []float64) (float64, error) {
	if p == nil || len(p.Groups) == 0 {
		return 0, errors.New("core: empty piecewise model")
	}
	m, ok := p.Groups[opp.BusFreqMHz]
	if !ok {
		return 0, fmt.Errorf("core: no model for bus tier %d MHz", opp.BusFreqMHz)
	}
	return m.Predict(x)
}

// StaticPower is the fitted static (leakage + constant floor) power
// model: Eq. (5) plus an additive constant for the voltage- and
// temperature-independent floor (uncore, device baseline).
type StaticPower struct {
	// Params is [k1, alpha, beta, k2, gamma, delta] of Eq. (5).
	Params []float64
	// ConstW is the fitted constant floor.
	ConstW float64
}

// At evaluates the static power at supply voltage v and temperature t.
func (s StaticPower) At(voltV, tempC float64) float64 {
	if len(s.Params) != 6 {
		return s.ConstW
	}
	return power.Params(s.Params, voltV, tempC) + s.ConstW
}

// Models is the trained predictor bundle DORA carries.
type Models struct {
	// Features names the model inputs (FeatureNames order).
	Features []string
	// LoadTime predicts the whole-load web page load time in seconds.
	LoadTime *Piecewise
	// DynPower predicts the load-average device power in watts above
	// the static component.
	DynPower *Piecewise
	// Static is the fitted leakage + floor model.
	Static StaticPower
	// RefTempC is the temperature a leakage-oblivious configuration
	// assumes (the DORA_no_lkg ablation of Fig. 10).
	RefTempC float64
}

// Validate checks the bundle is usable.
func (m *Models) Validate() error {
	if m == nil {
		return errors.New("core: nil models")
	}
	if m.LoadTime == nil || len(m.LoadTime.Groups) == 0 {
		return errors.New("core: missing load-time model")
	}
	if m.DynPower == nil || len(m.DynPower.Groups) == 0 {
		return errors.New("core: missing power model")
	}
	if len(m.Static.Params) != 6 {
		return errors.New("core: static model must have 6 parameters")
	}
	return nil
}

// Prediction is one candidate OPP's predicted outcome.
type Prediction struct {
	OPP       dvfs.OPP
	LoadTimeS float64
	PowerW    float64
	PPW       float64
	Feasible  bool // predicted to meet the deadline
}

// PredictAll evaluates every OPP in the table for the given inputs.
// useLeakage selects whether the static component tracks the live
// temperature or is frozen at RefTempC (DORA_no_lkg).
func (m *Models) PredictAll(tab *dvfs.Table, page []float64, mpki, util, tempC float64, deadline time.Duration, useLeakage bool) ([]Prediction, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make([]Prediction, 0, tab.Len())
	for i := 0; i < tab.Len(); i++ {
		opp := tab.At(i)
		x, err := InputVector(page, mpki, opp, util)
		if err != nil {
			return nil, err
		}
		t, err := m.LoadTime.Predict(opp, x)
		if err != nil {
			return nil, err
		}
		dyn, err := m.DynPower.Predict(opp, x)
		if err != nil {
			return nil, err
		}
		temp := tempC
		if !useLeakage {
			temp = m.RefTempC
		}
		p := dyn + m.Static.At(opp.VoltageV, temp)
		if t < 1e-3 {
			t = 1e-3 // clamp pathological extrapolations
		}
		if p < 0.1 {
			p = 0.1
		}
		pr := Prediction{
			OPP:       opp,
			LoadTimeS: t,
			PowerW:    p,
			PPW:       1 / (t * p),
			Feasible:  deadline <= 0 || t <= deadline.Seconds(),
		}
		out = append(out, pr)
	}
	return out, nil
}

// Mode selects which policy the model-based governor runs.
type Mode int

const (
	// ModeDORA is Algorithm 1: max PPW subject to the deadline.
	ModeDORA Mode = iota
	// ModeDL is the deadline-only governor: lowest feasible frequency.
	ModeDL
	// ModeEE is the energy-only governor: max PPW, deadline ignored.
	ModeEE
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeDORA:
		return "DORA"
	case ModeDL:
		return "DL"
	case ModeEE:
		return "EE"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures the governor.
type Options struct {
	Mode Mode
	// UseLeakage: when false the governor ignores the live temperature
	// (the DORA_no_lkg configuration of Fig. 10a).
	UseLeakage bool
	// DeadlineMargin scales the deadline used for feasibility
	// filtering (0 < m <= 1; default 1). The DL governor runs with
	// headroom (~0.93): it deliberately sits at the lowest feasible
	// frequency, so without margin any prediction error flips a
	// boundary workload into a violation.
	DeadlineMargin float64
	// Fallback handles intervals with no page load in flight; nil
	// holds the current OPP.
	Fallback governor.Governor
	// NameSuffix distinguishes ablations in reports.
	NameSuffix string
	// Clock times Decide passes for the Section V-H controller
	// overhead figure (nil = the monotonic wall clock). Tests inject
	// a manual clock so DecideTime is deterministic.
	Clock clock.Clock
}

// Governor is the model-based frequency governor.
type Governor struct {
	models *Models
	opts   Options
	clk    clock.Clock

	decisions  int
	decideTime time.Duration

	// Last Algorithm-1 pass internals, for the decision log. Stored as
	// plain fields so Decide stays allocation-free; DecisionDetails
	// builds the map only when a log asks for it.
	lastValid    bool
	lastPred     Prediction
	lastFeasible int
}

var _ governor.Governor = (*Governor)(nil)

// New builds a model-based governor; mode selects DORA, DL, or EE.
func New(models *Models, opts Options) (*Governor, error) {
	if err := models.Validate(); err != nil {
		return nil, err
	}
	return &Governor{models: models, opts: opts, clk: clock.Or(opts.Clock)}, nil
}

// Name identifies the governor in reports.
func (g *Governor) Name() string {
	n := g.opts.Mode.String()
	if !g.opts.UseLeakage && g.opts.Mode == ModeDORA {
		n += "_no_lkg"
	}
	return n + g.opts.NameSuffix
}

// Reset clears per-run state.
func (g *Governor) Reset() {
	g.decisions = 0
	g.decideTime = 0
	g.lastValid = false
	if g.opts.Fallback != nil {
		g.opts.Fallback.Reset()
	}
}

// DecisionDetails implements governor.Instrumented: the predicted
// outcome at the OPP chosen by the last model pass, and how many
// candidate settings were deadline-feasible. Nil when the last
// interval had no page load in flight.
func (g *Governor) DecisionDetails() map[string]float64 {
	if !g.lastValid {
		return nil
	}
	feasible := 0.0
	if g.lastPred.Feasible {
		feasible = 1
	}
	return map[string]float64{
		"pred_load_s":     g.lastPred.LoadTimeS,
		"pred_power_w":    g.lastPred.PowerW,
		"pred_ppw":        g.lastPred.PPW,
		"chosen_feasible": feasible,
		"feasible_opps":   float64(g.lastFeasible),
	}
}

// Decisions returns the number of page-load decisions made since Reset.
func (g *Governor) Decisions() int { return g.decisions }

// DecideTime returns the cumulative wall-clock cost of decisions — the
// controller-overhead figure of the paper's Section V-H.
func (g *Governor) DecideTime() time.Duration { return g.decideTime }

// Decide implements Algorithm 1 of the paper.
func (g *Governor) Decide(ctx governor.Context) dvfs.OPP {
	if len(ctx.PageFeatures) == 0 {
		// No load in flight: delegate or hold.
		if g.opts.Fallback != nil {
			return g.opts.Fallback.Decide(ctx)
		}
		return ctx.Current
	}
	start := g.clk.Now()
	defer func() {
		g.decisions++
		g.decideTime += g.clk.Since(start)
	}()

	deadline := ctx.Deadline
	if g.opts.DeadlineMargin > 0 && g.opts.DeadlineMargin < 1 {
		deadline = time.Duration(float64(deadline) * g.opts.DeadlineMargin)
	}
	preds, err := g.models.PredictAll(
		ctx.Table, ctx.PageFeatures,
		ctx.CoRunMPKI(), ctx.CoRunUtilization(), ctx.SoCTempC,
		deadline, g.opts.UseLeakage,
	)
	if err != nil {
		// A usable governor never wedges the device: fail to max.
		g.lastValid = false
		return ctx.Table.Max()
	}
	g.lastFeasible = 0
	for i := range preds {
		if preds[i].Feasible {
			g.lastFeasible++
		}
	}
	record := func(p Prediction) dvfs.OPP {
		g.lastValid = true
		g.lastPred = p
		return p.OPP
	}

	switch g.opts.Mode {
	case ModeEE:
		best := preds[0]
		for _, p := range preds[1:] {
			if p.PPW > best.PPW {
				best = p
			}
		}
		return record(best)

	case ModeDL:
		for _, p := range preds { // ascending frequency
			if p.Feasible {
				return record(p)
			}
		}
		return record(preds[len(preds)-1]) // table max

	default: // ModeDORA — Algorithm 1
		var best *Prediction
		for i := range preds {
			p := &preds[i]
			if !p.Feasible {
				continue
			}
			if best == nil || p.PPW > best.PPW {
				best = p
			}
		}
		if best == nil {
			// No setting meets the deadline: prioritize QoS and load as
			// fast as possible (paper, Section V-D).
			return record(preds[len(preds)-1])
		}
		return record(*best)
	}
}
