package core

import (
	"testing"
	"time"

	"dora/internal/clock"
	"dora/internal/dvfs"
	"dora/internal/governor"
)

// TestDecideTimeInjectedClock proves the controller-overhead timing is
// fully clock-injected: with a ticking manual clock every Decide pass
// measures exactly one step, so DecideTime is deterministic — the
// property the doralint determinism analyzer enforces statically by
// banning direct time.Now/time.Since in this package.
func TestDecideTimeInjectedClock(t *testing.T) {
	models := syntheticModels(t)
	g, err := New(models, Options{
		Mode:       ModeDORA,
		UseLeakage: true,
		Clock:      clock.NewTicking(time.Millisecond),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	table := dvfs.MSM8974()
	ctx := governor.Context{
		Now:          0,
		Deadline:     3 * time.Second,
		Table:        table,
		Current:      table.Min(),
		PageFeatures: []float64{2000, 300, 250, 200, 260},
	}
	const reps = 7
	for i := 0; i < reps; i++ {
		g.Decide(ctx)
	}
	if g.Decisions() != reps {
		t.Fatalf("Decisions = %d, want %d", g.Decisions(), reps)
	}
	if got := g.DecideTime(); got != reps*time.Millisecond {
		t.Fatalf("DecideTime = %v, want %v (one tick per pass)", got, reps*time.Millisecond)
	}
}
