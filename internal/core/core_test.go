package core

import (
	"testing"
	"time"

	"math/rand"

	"dora/internal/dvfs"
	"dora/internal/governor"
	"dora/internal/power"
	"dora/internal/regress"
)

// syntheticModels builds a model bundle from a known ground truth:
//
//	load time  = work / f(GHz) + mpki*0.05  (seconds)
//	dyn power  = 0.8 * f(GHz)^2            (watts)
//
// fitted exactly, so governor decisions can be verified analytically.
func syntheticModels(t *testing.T) *Models {
	t.Helper()
	tab := dvfs.MSM8974()
	feat := FeatureNames()
	lt := NewPiecewise()
	dp := NewPiecewise()
	rng := rand.New(rand.NewSource(9))
	for _, grp := range tab.BusGroups() {
		var xs [][]float64
		var yt, yp []float64
		for _, opp := range grp {
			for s := 0; s < 40; s++ {
				work := 1 + rng.Float64()*5
				mpki := rng.Float64() * 15
				util := rng.Float64()
				// Decorrelated auxiliary page features so the design
				// matrix has full rank; ground truth depends on work
				// (encoded in X1) only.
				page := []float64{
					work * 1000,
					rng.Float64() * 500,
					rng.Float64() * 300,
					rng.Float64() * 200,
					rng.Float64() * 400,
				}
				x, err := InputVector(page, mpki, opp, util)
				if err != nil {
					t.Fatal(err)
				}
				xs = append(xs, x)
				yt = append(yt, work/opp.FreqGHz()+mpki*0.05)
				yp = append(yp, 0.8*opp.FreqGHz()*opp.FreqGHz())
			}
		}
		mt, err := regress.Fit(regress.Interaction, feat, xs, yt)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := regress.Fit(regress.Linear, feat, xs, yp)
		if err != nil {
			t.Fatal(err)
		}
		lt.Add(grp[0].BusFreqMHz, mt)
		dp.Add(grp[0].BusFreqMHz, mp)
	}
	l := power.DefaultLeakage()
	return &Models{
		Features: feat,
		LoadTime: lt,
		DynPower: dp,
		Static:   StaticPower{Params: []float64{l.K1, l.Alpha, l.Beta, l.K2, l.Gamma, l.Delta}, ConstW: 1.3},
		RefTempC: 30,
	}
}

func pageFor(work float64) []float64 {
	return []float64{work * 1000, work * 100, work * 50, work * 40, work * 60}
}

func ctx(t *testing.T, page []float64, deadline time.Duration, tempC float64) governor.Context {
	t.Helper()
	tab := dvfs.MSM8974()
	return governor.Context{
		Table:        tab,
		Current:      tab.Min(),
		Deadline:     deadline,
		PageFeatures: page,
		SoCTempC:     tempC,
	}
}

func TestFeatureNamesAndInputVector(t *testing.T) {
	if len(FeatureNames()) != 9 {
		t.Fatal("Table I has 9 independent variables")
	}
	opp := dvfs.OPP{FreqMHz: 1500, VoltageV: 1.0, BusFreqMHz: 800}
	x, err := InputVector([]float64{1, 2, 3, 4, 5}, 6.5, opp, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5, 6.5, 1.5, 800, 0.75}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("InputVector = %v", x)
		}
	}
	if _, err := InputVector([]float64{1, 2}, 0, opp, 0); err == nil {
		t.Fatal("short page vector must error")
	}
}

func TestModelsValidate(t *testing.T) {
	m := syntheticModels(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilM *Models
	if err := nilM.Validate(); err == nil {
		t.Fatal("nil models must fail")
	}
	bad := *m
	bad.LoadTime = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing load-time model must fail")
	}
	bad = *m
	bad.Static = StaticPower{}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing static params must fail")
	}
	if _, err := New(&bad, Options{}); err == nil {
		t.Fatal("New must reject invalid models")
	}
}

func TestPredictAllShape(t *testing.T) {
	m := syntheticModels(t)
	tab := dvfs.MSM8974()
	preds, err := m.PredictAll(tab, pageFor(2), 5, 1, 45, 3*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != tab.Len() {
		t.Fatalf("predictions = %d, want %d", len(preds), tab.Len())
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].LoadTimeS >= preds[i-1].LoadTimeS {
			t.Fatalf("load time must fall with frequency: %v then %v",
				preds[i-1].LoadTimeS, preds[i].LoadTimeS)
		}
		if preds[i].PowerW <= preds[i-1].PowerW {
			t.Fatalf("power must rise with frequency")
		}
	}
	// Feasibility respects ground truth: t = 2/f + 0.25.
	for _, p := range preds {
		wantFeasible := 2/p.OPP.FreqGHz()+0.25 <= 3.0+0.02
		if p.Feasible != wantFeasible && p.OPP.FreqGHz() > 0.7 {
			t.Fatalf("feasibility at %d MHz = %v, ground truth says %v",
				p.OPP.FreqMHz, p.Feasible, wantFeasible)
		}
	}
}

func TestDORAPicksMaxPPWFeasible(t *testing.T) {
	m := syntheticModels(t)
	g, err := New(m, Options{Mode: ModeDORA, UseLeakage: true})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx(t, pageFor(2), 3*time.Second, 45)
	got := g.Decide(c)
	// Verify against brute force over predictions.
	preds, _ := m.PredictAll(c.Table, c.PageFeatures, 0, 0, 45, c.Deadline, true)
	var best *Prediction
	for i := range preds {
		if preds[i].Feasible && (best == nil || preds[i].PPW > best.PPW) {
			best = &preds[i]
		}
	}
	if best == nil || got.FreqMHz != best.OPP.FreqMHz {
		t.Fatalf("DORA chose %d, brute force says %v", got.FreqMHz, best)
	}
	if g.Decisions() != 1 {
		t.Fatalf("Decisions = %d", g.Decisions())
	}
	if g.DecideTime() <= 0 {
		t.Fatal("DecideTime must accumulate")
	}
}

func TestDORAInfeasibleGoesMax(t *testing.T) {
	m := syntheticModels(t)
	g, _ := New(m, Options{Mode: ModeDORA, UseLeakage: true})
	// work=6: t = 6/f + mpki effect; even at 2.265 GHz t=2.65s; with a
	// 1 s deadline nothing is feasible.
	c := ctx(t, pageFor(6), time.Second, 45)
	if got := g.Decide(c); got.FreqMHz != c.Table.Max().FreqMHz {
		t.Fatalf("infeasible load must go to max, got %d", got.FreqMHz)
	}
}

func TestDLPicksLowestFeasible(t *testing.T) {
	m := syntheticModels(t)
	g, _ := New(m, Options{Mode: ModeDL, UseLeakage: true})
	c := ctx(t, pageFor(2), 3*time.Second, 45)
	got := g.Decide(c)
	// Ground truth: lowest f with 2/f <= 2.75 -> f >= 0.727 GHz -> 729.
	if got.FreqMHz != 729 {
		t.Fatalf("DL chose %d, want 729", got.FreqMHz)
	}
	// Infeasible: max.
	c2 := ctx(t, pageFor(6), time.Second, 45)
	if got := g.Decide(c2); got.FreqMHz != c2.Table.Max().FreqMHz {
		t.Fatalf("infeasible DL must go max, got %d", got.FreqMHz)
	}
}

func TestEEIgnoresDeadline(t *testing.T) {
	m := syntheticModels(t)
	g, _ := New(m, Options{Mode: ModeEE, UseLeakage: true})
	// Tight deadline that EE must ignore.
	tight := g.Decide(ctx(t, pageFor(4), 100*time.Millisecond, 45))
	loose := g.Decide(ctx(t, pageFor(4), time.Hour, 45))
	if tight.FreqMHz != loose.FreqMHz {
		t.Fatalf("EE must ignore the deadline: %d vs %d", tight.FreqMHz, loose.FreqMHz)
	}
}

func TestDORAEqualsEEWhenDeadlineLoose(t *testing.T) {
	m := syntheticModels(t)
	dora, _ := New(m, Options{Mode: ModeDORA, UseLeakage: true})
	ee, _ := New(m, Options{Mode: ModeEE, UseLeakage: true})
	c := ctx(t, pageFor(1), time.Hour, 45)
	if dora.Decide(c).FreqMHz != ee.Decide(c).FreqMHz {
		t.Fatal("with a loose deadline DORA must match EE (f_opt = f_E)")
	}
}

func TestDORADeadlineSweepSwitchesFDToFE(t *testing.T) {
	// Fig. 11: tight deadlines pin f_opt to f_D (falling as the
	// deadline relaxes), then f_opt settles at f_E.
	m := syntheticModels(t)
	g, _ := New(m, Options{Mode: ModeDORA, UseLeakage: true})
	var freqs []int
	for d := 1; d <= 10; d++ {
		got := g.Decide(ctx(t, pageFor(4), time.Duration(d)*time.Second, 45))
		freqs = append(freqs, got.FreqMHz)
	}
	// Non-increasing, and the tail is constant (= f_E).
	for i := 1; i < len(freqs); i++ {
		if freqs[i] > freqs[i-1] {
			t.Fatalf("f_opt must not rise as deadline relaxes: %v", freqs)
		}
	}
	if freqs[0] != 2265 {
		t.Fatalf("1 s deadline for work=4 must pin max, got %d", freqs[0])
	}
	if freqs[len(freqs)-1] == 2265 {
		t.Fatalf("10 s deadline must relax to f_E below max: %v", freqs)
	}
	if freqs[len(freqs)-1] != freqs[len(freqs)-2] {
		t.Fatalf("tail must settle at f_E: %v", freqs)
	}
}

func TestLeakageAwareShiftsWithTemperature(t *testing.T) {
	m := syntheticModels(t)
	aware, _ := New(m, Options{Mode: ModeEE, UseLeakage: true})
	blind, _ := New(m, Options{Mode: ModeEE, UseLeakage: false})
	cold := ctx(t, pageFor(2), time.Hour, 20)
	hot := ctx(t, pageFor(2), time.Hour, 75)
	// The leakage-blind governor decides identically at any temp.
	if blind.Decide(cold).FreqMHz != blind.Decide(hot).FreqMHz {
		t.Fatal("no-leakage governor must ignore temperature")
	}
	// The aware governor must not pick a higher frequency when hot.
	if aware.Decide(hot).FreqMHz > aware.Decide(cold).FreqMHz {
		t.Fatal("heat must not push the aware governor to higher frequency")
	}
}

func TestFallbackAndHold(t *testing.T) {
	m := syntheticModels(t)
	g, _ := New(m, Options{Mode: ModeDORA, UseLeakage: true})
	c := ctx(t, nil, 3*time.Second, 45)
	c.Current, _ = c.Table.ByFreq(1190)
	if got := g.Decide(c); got.FreqMHz != 1190 {
		t.Fatalf("idle with no fallback must hold, got %d", got.FreqMHz)
	}
	g2, _ := New(m, Options{Mode: ModeDORA, UseLeakage: true, Fallback: governor.NewPowersave()})
	if got := g2.Decide(c); got.FreqMHz != c.Table.Min().FreqMHz {
		t.Fatalf("fallback must be used when idle, got %d", got.FreqMHz)
	}
	g2.Reset()
	if g2.Decisions() != 0 || g2.DecideTime() != 0 {
		t.Fatal("Reset must clear counters")
	}
}

func TestGovernorNames(t *testing.T) {
	m := syntheticModels(t)
	for _, tc := range []struct {
		opts Options
		want string
	}{
		{Options{Mode: ModeDORA, UseLeakage: true}, "DORA"},
		{Options{Mode: ModeDORA, UseLeakage: false}, "DORA_no_lkg"},
		{Options{Mode: ModeDL, UseLeakage: true}, "DL"},
		{Options{Mode: ModeEE, UseLeakage: true}, "EE"},
		{Options{Mode: ModeDORA, UseLeakage: true, NameSuffix: "-x"}, "DORA-x"},
	} {
		g, err := New(m, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != tc.want {
			t.Fatalf("Name = %q, want %q", g.Name(), tc.want)
		}
	}
	if ModeDORA.String() != "DORA" || Mode(9).String() == "" {
		t.Fatal("mode names wrong")
	}
}

func TestPiecewiseErrors(t *testing.T) {
	p := NewPiecewise()
	if _, err := p.Predict(dvfs.OPP{BusFreqMHz: 333}, nil); err == nil {
		t.Fatal("empty piecewise must error")
	}
	var nilP *Piecewise
	if _, err := nilP.Predict(dvfs.OPP{}, nil); err == nil {
		t.Fatal("nil piecewise must error")
	}
	m := syntheticModels(t)
	if _, err := m.LoadTime.Predict(dvfs.OPP{BusFreqMHz: 999}, nil); err == nil {
		t.Fatal("unknown bus tier must error")
	}
}

func TestStaticPowerShape(t *testing.T) {
	l := power.DefaultLeakage()
	s := StaticPower{Params: []float64{l.K1, l.Alpha, l.Beta, l.K2, l.Gamma, l.Delta}, ConstW: 1.3}
	if s.At(1.1, 65) <= s.At(0.85, 30) {
		t.Fatal("static power must grow with voltage and temperature")
	}
	if got := (StaticPower{ConstW: 2}).At(1, 50); got != 2 {
		t.Fatalf("missing params must fall back to const, got %v", got)
	}
}
