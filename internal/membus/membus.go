// Package membus models the LPDDR3 memory channel of the simulated
// SoC: per-transaction (cache-line fill) latency as a function of the
// memory bus frequency and of the aggregate demand from all cores. The
// utilization-dependent queueing delay is the second interference
// mechanism (after shared-L2 evictions) that couples co-scheduled
// applications to web page load time.
//
// The model is windowed: the simulation driver accumulates transaction
// counts per owner during a window, then calls EndWindow; the resulting
// utilization sets the queueing delay applied in the next window
// (single-step relaxation, avoiding a fixed-point solve per window).
package membus

import (
	"errors"
	"fmt"
	"time"
)

// Config describes the memory channel.
type Config struct {
	// LineBytes is the transaction size (one cache-line fill).
	LineBytes int
	// BaseLatency is the unloaded DRAM access latency (row activate +
	// CAS), independent of bus frequency.
	BaseLatency time.Duration
	// BytesPerSecPerMHz converts the bus clock into peak bandwidth:
	// peak = BusFreqMHz * BytesPerSecPerMHz. A dual-channel 32-bit DDR
	// interface moves 16 bytes per clock-MHz-second: at 933 MHz this
	// gives ~14.9 GB/s, matching LPDDR3-1866.
	BytesPerSecPerMHz float64
	// MaxUtilization clamps the queueing model short of the pole.
	MaxUtilization float64
	// EnergyPerByteJ is the access energy per byte transferred.
	EnergyPerByteJ float64
	// IdlePowerW is the DRAM+controller background power.
	IdlePowerW float64
	// MaxOwners bounds per-requestor accounting.
	MaxOwners int
}

// DefaultLPDDR3 returns the configuration used for the Nexus 5's 2 GB
// LPDDR3 channel.
func DefaultLPDDR3() Config {
	return Config{
		LineBytes:   64,
		BaseLatency: 100 * time.Nanosecond,
		// Achievable CPU-side bandwidth: the 2x32-bit LPDDR3 channel
		// delivers well under its theoretical peak to the CPU cluster
		// (controller efficiency, display/ISP clients); ~8.4 GB/s at
		// the 933 MHz tier.
		BytesPerSecPerMHz: 9e6,
		MaxUtilization:    0.95,
		EnergyPerByteJ:    50e-12, // ~50 pJ/byte, LPDDR3 class
		IdlePowerW:        0.035,
		MaxOwners:         4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.BaseLatency <= 0 || c.BytesPerSecPerMHz <= 0 {
		return errors.New("membus: non-positive geometry or latency")
	}
	if c.MaxUtilization <= 0 || c.MaxUtilization >= 1 {
		return errors.New("membus: MaxUtilization must be in (0,1)")
	}
	if c.MaxOwners <= 0 {
		return errors.New("membus: MaxOwners must be positive")
	}
	if c.EnergyPerByteJ < 0 || c.IdlePowerW < 0 {
		return errors.New("membus: negative energy parameters")
	}
	return nil
}

// WindowStats reports one accounting window.
type WindowStats struct {
	Duration     time.Duration
	Transactions int64
	// PerOwner aliases a scratch buffer reused by the next EndWindow
	// call (the hot path closes a window every slice and must not
	// allocate); copy it if retained.
	PerOwner    []int64
	Utilization float64 // demanded/peak bandwidth, clamped to MaxUtilization
	EnergyJ     float64 // transfer + idle energy for the window
}

// Bus is the windowed memory channel model.
type Bus struct {
	cfg      Config
	freqMHz  int
	lastUtil float64
	window   []int64
	perOwner []int64 // scratch handed out via WindowStats.PerOwner
	totalTx  int64
	totalEJ  float64
}

// New builds a Bus; the initial bus frequency must be set before use.
func New(cfg Config, initialFreqMHz int) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if initialFreqMHz <= 0 {
		return nil, fmt.Errorf("membus: invalid initial frequency %d", initialFreqMHz)
	}
	return &Bus{
		cfg:      cfg,
		freqMHz:  initialFreqMHz,
		window:   make([]int64, cfg.MaxOwners),
		perOwner: make([]int64, cfg.MaxOwners),
	}, nil
}

// SetFreqMHz retargets the bus clock (follows the core OPP's bus tier).
func (b *Bus) SetFreqMHz(mhz int) {
	if mhz > 0 {
		b.freqMHz = mhz
	}
}

// FreqMHz returns the current bus clock.
func (b *Bus) FreqMHz() int { return b.freqMHz }

// PeakBandwidth returns bytes/second at the current bus frequency.
func (b *Bus) PeakBandwidth() float64 {
	return float64(b.freqMHz) * b.cfg.BytesPerSecPerMHz
}

// Utilization returns the utilization measured in the last completed
// window — the value currently shaping transaction latency.
func (b *Bus) Utilization() float64 { return b.lastUtil }

// TransactionLatency returns the current effective latency of one
// line-fill: base DRAM latency plus transfer time at the current bus
// clock, inflated by an M/M/1-shaped queueing factor driven by the last
// window's utilization.
func (b *Bus) TransactionLatency() time.Duration {
	base := b.cfg.BaseLatency.Seconds() + b.TransferSeconds()
	return time.Duration(base * (1 + b.QueueFactor()) * float64(time.Second))
}

// TransferSeconds returns the line transfer time at the current bus
// clock (the frequency-dependent part of the service time).
func (b *Bus) TransferSeconds() float64 {
	return float64(b.cfg.LineBytes) / b.PeakBandwidth()
}

// QueueFactor returns the current waiting-time multiplier minus one:
// latency = service * (1 + QueueFactor). It grows quadratically at low
// load and diverges toward the (clamped) pole — the standard
// single-server shape.
func (b *Bus) QueueFactor() float64 {
	u := b.lastUtil
	if u > b.cfg.MaxUtilization {
		u = b.cfg.MaxUtilization
	}
	return u * u / (1 - u)
}

// Add records n transactions by owner in the current window.
func (b *Bus) Add(owner int, n int64) {
	if owner < 0 || owner >= len(b.window) {
		panic(fmt.Sprintf("membus: owner %d out of range", owner))
	}
	if n < 0 {
		panic("membus: negative transaction count")
	}
	b.window[owner] += n
}

// EndWindow closes the current accounting window of the given duration,
// computes its utilization and energy, installs the utilization for the
// next window's latency, and resets per-window counters.
func (b *Bus) EndWindow(dur time.Duration) (WindowStats, error) {
	if dur <= 0 {
		return WindowStats{}, errors.New("membus: non-positive window duration")
	}
	var tx int64
	per := b.perOwner
	copy(per, b.window)
	for _, n := range b.window {
		tx += n
	}
	demanded := float64(tx*int64(b.cfg.LineBytes)) / dur.Seconds()
	util := demanded / b.PeakBandwidth()
	if util > b.cfg.MaxUtilization {
		util = b.cfg.MaxUtilization
	}
	energy := float64(tx*int64(b.cfg.LineBytes))*b.cfg.EnergyPerByteJ +
		b.cfg.IdlePowerW*dur.Seconds()

	b.lastUtil = util
	b.totalTx += tx
	b.totalEJ += energy
	for i := range b.window {
		b.window[i] = 0
	}
	return WindowStats{
		Duration:     dur,
		Transactions: tx,
		PerOwner:     per,
		Utilization:  util,
		EnergyJ:      energy,
	}, nil
}

// TotalTransactions returns the lifetime transaction count.
func (b *Bus) TotalTransactions() int64 { return b.totalTx }

// TotalEnergyJ returns the lifetime bus+DRAM energy.
func (b *Bus) TotalEnergyJ() float64 { return b.totalEJ }

// Reset clears all state (utilization, counters, energy).
func (b *Bus) Reset() {
	b.lastUtil = 0
	b.totalTx = 0
	b.totalEJ = 0
	for i := range b.window {
		b.window[i] = 0
	}
}

// Snapshot is a deep copy of the bus's warm state: frequency, the
// utilization estimate the queueing factor feeds on, the per-owner
// transaction window, and the lifetime energy/transaction totals.
type Snapshot struct {
	FreqMHz  int
	LastUtil float64
	Window   []int64
	TotalTx  int64
	TotalEJ  float64
}

// Snapshot captures the bus state for a simulation checkpoint.
func (b *Bus) Snapshot() Snapshot {
	s := Snapshot{
		FreqMHz:  b.freqMHz,
		LastUtil: b.lastUtil,
		Window:   make([]int64, len(b.window)),
		TotalTx:  b.totalTx,
		TotalEJ:  b.totalEJ,
	}
	copy(s.Window, b.window)
	return s
}

// Restore overwrites the bus state with a snapshot from a bus of the
// same owner count.
func (b *Bus) Restore(s Snapshot) {
	if len(s.Window) != len(b.window) {
		panic("membus: snapshot owner-count mismatch")
	}
	b.freqMHz = s.FreqMHz
	b.lastUtil = s.LastUtil
	copy(b.window, s.Window)
	b.totalTx = s.TotalTx
	b.totalEJ = s.TotalEJ
}
