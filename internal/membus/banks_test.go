package membus

import (
	"testing"
	"testing/quick"

	"dora/internal/workload"
)

func newBanks(t *testing.T) *BankModel {
	t.Helper()
	b, err := NewBankModel(DefaultLPDDR3Banks())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBankConfigValidation(t *testing.T) {
	bad := []BankConfig{
		{Banks: 3, RowBytes: 1024, RowHitNs: 1, RowMissNs: 2, RowConflictNs: 3},
		{Banks: 8, RowBytes: 1000, RowHitNs: 1, RowMissNs: 2, RowConflictNs: 3},
		{Banks: 8, RowBytes: 1024, RowHitNs: 0, RowMissNs: 2, RowConflictNs: 3},
		{Banks: 8, RowBytes: 1024, RowHitNs: 5, RowMissNs: 2, RowConflictNs: 3},
		{Banks: 8, RowBytes: 1024, RowHitNs: 1, RowMissNs: 4, RowConflictNs: 3},
	}
	for i, cfg := range bad {
		if _, err := NewBankModel(cfg); err == nil {
			t.Errorf("config %d must fail", i)
		}
	}
	if _, err := NewBankModel(DefaultLPDDR3Banks()); err != nil {
		t.Fatal(err)
	}
}

func TestRowBufferBehaviour(t *testing.T) {
	b := newBanks(t)
	cfg := DefaultLPDDR3Banks()
	// First touch of a row: miss.
	if got := b.AccessNs(0); got != cfg.RowMissNs {
		t.Fatalf("cold access = %v, want miss %v", got, cfg.RowMissNs)
	}
	// Same row: hit.
	if got := b.AccessNs(64); got != cfg.RowHitNs {
		t.Fatalf("same-row access = %v, want hit %v", got, cfg.RowHitNs)
	}
	// Different row, same bank (banks*rowBytes apart): conflict.
	stride := uint64(cfg.Banks * cfg.RowBytes)
	if got := b.AccessNs(stride); got != cfg.RowConflictNs {
		t.Fatalf("same-bank new-row = %v, want conflict %v", got, cfg.RowConflictNs)
	}
	h, m, c := b.Stats()
	if h != 1 || m != 1 || c != 1 {
		t.Fatalf("stats = %d/%d/%d", h, m, c)
	}
	b.Reset()
	if b.RowHitRate() != 0 {
		t.Fatal("reset must clear stats")
	}
	if got := b.AccessNs(0); got != cfg.RowMissNs {
		t.Fatal("reset must close rows")
	}
}

func TestSequentialBeatsRandom(t *testing.T) {
	// A sequential stream enjoys far higher row-hit rates than a random
	// one — the fidelity the bank model adds over the flat latency.
	measure := func(pattern workload.Pattern) float64 {
		b, err := NewBankModel(DefaultLPDDR3Banks())
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewRefGen(workload.Segment{
			FootprintBytes: 32 << 20, Pattern: pattern, Base: 0,
		}, 3)
		for i := 0; i < 50_000; i++ {
			b.AccessNs(gen.Next())
		}
		return b.RowHitRate()
	}
	seq := measure(workload.Sequential)
	rnd := measure(workload.Random)
	if seq < 0.85 {
		t.Fatalf("sequential row-hit rate = %v, want high", seq)
	}
	if rnd > 0.2 {
		t.Fatalf("random row-hit rate = %v, want low", rnd)
	}
	if seq <= rnd {
		t.Fatal("sequential must beat random")
	}
}

func TestBankMeanLatencyNearFlatModel(t *testing.T) {
	// The calibrated flat BaseLatency (100 ns) sits inside the bank
	// model's hit/conflict band, so the flat model is the mix average.
	cfg := DefaultLPDDR3Banks()
	flat := DefaultLPDDR3().BaseLatency.Seconds() * 1e9
	if flat < cfg.RowHitNs || flat > cfg.RowConflictNs {
		t.Fatalf("flat latency %v outside bank band [%v, %v]", flat, cfg.RowHitNs, cfg.RowConflictNs)
	}
}

// Property: every access latency is one of the three configured values,
// and the stats always sum to the access count.
func TestBankInvariantsProperty(t *testing.T) {
	cfg := DefaultLPDDR3Banks()
	f := func(addrs []uint64) bool {
		b, err := NewBankModel(cfg)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			ns := b.AccessNs(a)
			if ns != cfg.RowHitNs && ns != cfg.RowMissNs && ns != cfg.RowConflictNs {
				return false
			}
		}
		h, m, c := b.Stats()
		return h+m+c == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
