package membus

import (
	"errors"
)

// BankModel adds DRAM bank and row-buffer state on top of the windowed
// bus model: each access maps to a bank and row; hitting the open row
// is fast, a row conflict pays precharge + activate. This refines the
// flat BaseLatency with address-dependent behaviour (sequential streams
// enjoy open-row hits; random traffic thrashes rows and pays more).
//
// The refinement is optional — the calibrated reproduction uses the
// flat latency (which the row-hit/miss mix averages to); the bank model
// exists for fidelity studies and is exercised by its own tests and
// benchmarks.
type BankModel struct {
	banks   int
	rowBits uint // bytes per row = 1 << rowBits
	openRow []int64
	valid   []bool

	// Latencies in nanoseconds.
	RowHitNs      float64
	RowMissNs     float64
	RowConflictNs float64

	hits, misses, conflicts uint64
}

// BankConfig sizes the bank model.
type BankConfig struct {
	Banks    int // power of two
	RowBytes int // power of two (row-buffer size)

	RowHitNs      float64 // CAS only
	RowMissNs     float64 // activate + CAS (bank idle/precharged)
	RowConflictNs float64 // precharge + activate + CAS
}

// DefaultLPDDR3Banks returns LPDDR3-class bank timing: 8 banks, 1 KB
// rows, tCL ~ 15 ns, tRCD+tCL ~ 33 ns, tRP+tRCD+tCL ~ 50 ns, plus the
// controller/interconnect overhead that the flat model folds into
// BaseLatency.
func DefaultLPDDR3Banks() BankConfig {
	return BankConfig{
		Banks:         8,
		RowBytes:      1024,
		RowHitNs:      70,
		RowMissNs:     100,
		RowConflictNs: 135,
	}
}

// NewBankModel builds the model.
func NewBankModel(cfg BankConfig) (*BankModel, error) {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, errors.New("membus: banks must be a positive power of two")
	}
	if cfg.RowBytes <= 0 || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		return nil, errors.New("membus: row bytes must be a positive power of two")
	}
	if cfg.RowHitNs <= 0 || cfg.RowMissNs < cfg.RowHitNs || cfg.RowConflictNs < cfg.RowMissNs {
		return nil, errors.New("membus: latencies must satisfy hit <= miss <= conflict")
	}
	rowBits := uint(0)
	for b := cfg.RowBytes; b > 1; b >>= 1 {
		rowBits++
	}
	return &BankModel{
		banks:         cfg.Banks,
		rowBits:       rowBits,
		openRow:       make([]int64, cfg.Banks),
		valid:         make([]bool, cfg.Banks),
		RowHitNs:      cfg.RowHitNs,
		RowMissNs:     cfg.RowMissNs,
		RowConflictNs: cfg.RowConflictNs,
	}, nil
}

// AccessNs returns the DRAM service latency for the address and updates
// the open-row state.
func (b *BankModel) AccessNs(addr uint64) float64 {
	row := int64(addr >> b.rowBits)
	bank := int(row) & (b.banks - 1)
	switch {
	case b.valid[bank] && b.openRow[bank] == row:
		b.hits++
		return b.RowHitNs
	case !b.valid[bank]:
		b.misses++
		b.valid[bank] = true
		b.openRow[bank] = row
		return b.RowMissNs
	default:
		b.conflicts++
		b.openRow[bank] = row
		return b.RowConflictNs
	}
}

// Stats reports the access mix so far.
func (b *BankModel) Stats() (hits, misses, conflicts uint64) {
	return b.hits, b.misses, b.conflicts
}

// RowHitRate returns hits / total accesses (0 when idle).
func (b *BankModel) RowHitRate() float64 {
	total := b.hits + b.misses + b.conflicts
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// Reset closes all rows and zeroes counters.
func (b *BankModel) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
	b.hits, b.misses, b.conflicts = 0, 0, 0
}

// BankSnapshot is a deep copy of the bank model's warm state: every
// open-row register plus the hit/miss/conflict counters.
type BankSnapshot struct {
	OpenRow   []int64
	Valid     []bool
	Hits      uint64
	Misses    uint64
	Conflicts uint64
}

// Snapshot captures the bank-model state for a simulation checkpoint.
func (b *BankModel) Snapshot() BankSnapshot {
	s := BankSnapshot{
		OpenRow:   make([]int64, len(b.openRow)),
		Valid:     make([]bool, len(b.valid)),
		Hits:      b.hits,
		Misses:    b.misses,
		Conflicts: b.conflicts,
	}
	copy(s.OpenRow, b.openRow)
	copy(s.Valid, b.valid)
	return s
}

// Restore overwrites the bank-model state with a snapshot from a model
// of the same geometry.
func (b *BankModel) Restore(s BankSnapshot) {
	if len(s.OpenRow) != len(b.openRow) {
		panic("membus: bank snapshot geometry mismatch")
	}
	copy(b.openRow, s.OpenRow)
	copy(b.valid, s.Valid)
	b.hits = s.Hits
	b.misses = s.Misses
	b.conflicts = s.Conflicts
}
