package membus

import (
	"testing"
	"testing/quick"
	"time"
)

func newBus(t *testing.T) *Bus {
	t.Helper()
	b, err := New(DefaultLPDDR3(), 933)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultLPDDR3().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLPDDR3()
	bad.MaxUtilization = 1.0
	if err := bad.Validate(); err == nil {
		t.Fatal("MaxUtilization=1 must fail")
	}
	bad = DefaultLPDDR3()
	bad.LineBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero line bytes must fail")
	}
	bad = DefaultLPDDR3()
	bad.MaxOwners = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero owners must fail")
	}
	bad = DefaultLPDDR3()
	bad.EnergyPerByteJ = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative energy must fail")
	}
	if _, err := New(DefaultLPDDR3(), 0); err == nil {
		t.Fatal("zero initial frequency must fail")
	}
}

func TestPeakBandwidth(t *testing.T) {
	b := newBus(t)
	// 933 MHz * 9e6 B/s/MHz = 8.397 GB/s
	if got := b.PeakBandwidth(); got < 8.3e9 || got > 8.5e9 {
		t.Fatalf("PeakBandwidth = %v", got)
	}
	b.SetFreqMHz(333)
	if got := b.PeakBandwidth(); got < 2.9e9 || got > 3.1e9 {
		t.Fatalf("PeakBandwidth@333 = %v", got)
	}
	b.SetFreqMHz(0) // ignored
	if b.FreqMHz() != 333 {
		t.Fatal("SetFreqMHz(0) must be ignored")
	}
}

func TestUnloadedLatency(t *testing.T) {
	b := newBus(t)
	lat := b.TransactionLatency()
	// base 100ns + 64B/8.4GB/s (~7.6ns) and no queueing.
	if lat < 100*time.Nanosecond || lat > 115*time.Nanosecond {
		t.Fatalf("unloaded latency = %v", lat)
	}
}

func TestLatencyRisesWithUtilization(t *testing.T) {
	b := newBus(t)
	l0 := b.TransactionLatency()

	// Load one window at ~50% of peak: 14.9GB/s * 1ms * 0.5 / 64B.
	n := int64(0.5 * b.PeakBandwidth() * 0.001 / 64)
	b.Add(0, n)
	ws, err := b.EndWindow(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Utilization < 0.45 || ws.Utilization > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", ws.Utilization)
	}
	l1 := b.TransactionLatency()
	if l1 <= l0 {
		t.Fatalf("loaded latency %v must exceed unloaded %v", l1, l0)
	}

	// Saturating load clamps at MaxUtilization and still returns a
	// finite latency.
	b.Add(0, n*10)
	ws, _ = b.EndWindow(time.Millisecond)
	if ws.Utilization != DefaultLPDDR3().MaxUtilization {
		t.Fatalf("saturated utilization = %v, want clamp", ws.Utilization)
	}
	l2 := b.TransactionLatency()
	if l2 <= l1 || l2 > time.Millisecond {
		t.Fatalf("saturated latency implausible: %v", l2)
	}
}

func TestWindowAccounting(t *testing.T) {
	b := newBus(t)
	b.Add(0, 100)
	b.Add(1, 50)
	b.Add(0, 25)
	ws, err := b.EndWindow(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Transactions != 175 {
		t.Fatalf("transactions = %d", ws.Transactions)
	}
	if ws.PerOwner[0] != 125 || ws.PerOwner[1] != 50 {
		t.Fatalf("per-owner = %v", ws.PerOwner)
	}
	if ws.EnergyJ <= 0 {
		t.Fatal("window energy must be positive (idle power at least)")
	}
	// Window counters reset.
	ws2, _ := b.EndWindow(100 * time.Millisecond)
	if ws2.Transactions != 0 {
		t.Fatal("window counters must reset")
	}
	if b.TotalTransactions() != 175 {
		t.Fatalf("TotalTransactions = %d", b.TotalTransactions())
	}
	if b.TotalEnergyJ() <= 0 {
		t.Fatal("total energy must accumulate")
	}
}

func TestEndWindowErrors(t *testing.T) {
	b := newBus(t)
	if _, err := b.EndWindow(0); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestAddPanics(t *testing.T) {
	b := newBus(t)
	for _, tc := range []struct {
		owner int
		n     int64
	}{{-1, 1}, {99, 1}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d,%d) must panic", tc.owner, tc.n)
				}
			}()
			b.Add(tc.owner, tc.n)
		}()
	}
}

func TestReset(t *testing.T) {
	b := newBus(t)
	b.Add(0, 1000000)
	b.EndWindow(time.Millisecond)
	b.Reset()
	if b.Utilization() != 0 || b.TotalTransactions() != 0 || b.TotalEnergyJ() != 0 {
		t.Fatal("Reset must clear state")
	}
}

// Property: latency is monotone nondecreasing in utilization, finite,
// and never below the unloaded value.
func TestLatencyMonotoneProperty(t *testing.T) {
	f := func(rawA, rawB uint16) bool {
		b, err := New(DefaultLPDDR3(), 800)
		if err != nil {
			return false
		}
		unloaded := b.TransactionLatency()
		ua := float64(rawA%1000) / 1000
		ub := float64(rawB%1000) / 1000
		if ua > ub {
			ua, ub = ub, ua
		}
		peakPerMs := b.PeakBandwidth() * 0.001 / 64
		b.Add(0, int64(ua*peakPerMs))
		b.EndWindow(time.Millisecond)
		la := b.TransactionLatency()
		b.Add(0, int64(ub*peakPerMs))
		b.EndWindow(time.Millisecond)
		lb := b.TransactionLatency()
		return la >= unloaded && lb >= la && lb < time.Second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: lowering the bus frequency never lowers unloaded latency.
func TestBusFrequencyLatencyProperty(t *testing.T) {
	f := func(raw uint16) bool {
		lo := int(raw)%800 + 100
		hi := lo + 133
		bl, _ := New(DefaultLPDDR3(), lo)
		bh, _ := New(DefaultLPDDR3(), hi)
		return bl.TransactionLatency() >= bh.TransactionLatency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
