package governor

import (
	"testing"
	"time"

	"dora/internal/dvfs"
)

func TestOndemandRaceToMax(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewOndemand(DefaultOndemandConfig())
	got := g.Decide(ctxWith(0.95, tab.Min(), 0))
	if got.FreqMHz != tab.Max().FreqMHz {
		t.Fatalf("high load must jump to max, got %d", got.FreqMHz)
	}
}

func TestOndemandHoldAfterRaise(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewOndemand(DefaultOndemandConfig())
	up := g.Decide(ctxWith(0.95, tab.Min(), 0))
	// Load drops immediately: must hold for SamplingDownFactor periods.
	hold := g.Decide(ctxWith(0.05, up, 20*time.Millisecond))
	if hold.FreqMHz != up.FreqMHz {
		t.Fatalf("dropped to %d inside the hold window", hold.FreqMHz)
	}
	down := g.Decide(ctxWith(0.05, up, 200*time.Millisecond))
	if down.FreqMHz >= up.FreqMHz {
		t.Fatalf("still at %d after the hold window", down.FreqMHz)
	}
}

func TestOndemandProportionalDown(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewOndemand(DefaultOndemandConfig())
	cur, _ := tab.ByFreq(2265)
	got := g.Decide(ctxWith(0.30, cur, time.Second))
	targetMHz := 0.30 * 2265 / 0.70
	want := tab.Ceil(int(targetMHz))
	if got.FreqMHz != want.FreqMHz {
		t.Fatalf("scaled to %d, want %d", got.FreqMHz, want.FreqMHz)
	}
	// Load in the dead band: stay.
	stay := g.Decide(ctxWith(0.75, cur, 2*time.Second))
	if stay.FreqMHz != cur.FreqMHz {
		t.Fatalf("dead-band load moved frequency to %d", stay.FreqMHz)
	}
	g.Reset()
	if g.Name() != "ondemand" {
		t.Fatal("name wrong")
	}
}

func TestConservativeSteps(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewConservative(DefaultConservativeConfig())
	cur, _ := tab.ByFreq(960)
	up := g.Decide(ctxWith(0.95, cur, 0))
	if up.FreqMHz != 1036 {
		t.Fatalf("must step one OPP up (1036), got %d", up.FreqMHz)
	}
	down := g.Decide(ctxWith(0.05, cur, 0))
	if down.FreqMHz != 883 {
		t.Fatalf("must step one OPP down (883), got %d", down.FreqMHz)
	}
	stay := g.Decide(ctxWith(0.5, cur, 0))
	if stay.FreqMHz != cur.FreqMHz {
		t.Fatalf("mid load must hold, got %d", stay.FreqMHz)
	}
	// Edges clamp.
	atMax := g.Decide(ctxWith(0.95, tab.Max(), 0))
	if atMax.FreqMHz != tab.Max().FreqMHz {
		t.Fatal("step above max must clamp")
	}
	atMin := g.Decide(ctxWith(0.01, tab.Min(), 0))
	if atMin.FreqMHz != tab.Min().FreqMHz {
		t.Fatal("step below min must clamp")
	}
	g.Reset()
	if g.Name() != "conservative" {
		t.Fatal("name wrong")
	}
	// Unknown current frequency: hold.
	weird := Context{Table: tab, Current: dvfs.OPP{FreqMHz: 777}}
	if got := g.Decide(weird); got.FreqMHz != 777 {
		t.Fatal("unknown OPP must hold")
	}
}
