package governor

import (
	"time"

	"dora/internal/dvfs"
)

// OndemandConfig mirrors the tunables of the classic Linux ondemand
// governor, the other widely deployed cpufreq policy of the Nexus 5
// era.
type OndemandConfig struct {
	// UpThreshold: load above this jumps straight to the maximum.
	UpThreshold float64
	// DownDifferential: load must fall below UpThreshold minus this
	// before the governor scales down.
	DownDifferential float64
	// SamplingDownFactor multiplies the hold time after a raise.
	SamplingDownFactor int
	// SamplingRate is the nominal evaluation period.
	SamplingRate time.Duration
}

// DefaultOndemandConfig returns the kernel defaults.
func DefaultOndemandConfig() OndemandConfig {
	return OndemandConfig{
		UpThreshold:        0.80,
		DownDifferential:   0.10,
		SamplingDownFactor: 2,
		SamplingRate:       50 * time.Millisecond,
	}
}

type ondemand struct {
	cfg       OndemandConfig
	holdUntil time.Duration
}

// NewOndemand returns the classic ondemand governor: jump to max on
// high load, proportionally scale down when load falls.
func NewOndemand(cfg OndemandConfig) Governor { return &ondemand{cfg: cfg} }

func (g *ondemand) Name() string { return "ondemand" }

func (g *ondemand) Reset() { g.holdUntil = 0 }

func (g *ondemand) Decide(ctx Context) dvfs.OPP {
	load := ctx.MaxUtilization()
	cur := ctx.Current
	tab := ctx.Table

	if load >= g.cfg.UpThreshold {
		// Race to max, and hold it for SamplingDownFactor periods.
		g.holdUntil = ctx.Now + time.Duration(g.cfg.SamplingDownFactor)*g.cfg.SamplingRate
		return tab.Max()
	}
	if ctx.Now < g.holdUntil {
		return cur
	}
	if load > g.cfg.UpThreshold-g.cfg.DownDifferential {
		return cur
	}
	// Proportional scale-down: pick the frequency that would put the
	// observed load at UpThreshold-DownDifferential headroom.
	target := int(load * float64(cur.FreqMHz) / (g.cfg.UpThreshold - g.cfg.DownDifferential))
	return tab.Ceil(target)
}

// ConservativeConfig tunes the conservative governor, which steps one
// OPP at a time instead of jumping.
type ConservativeConfig struct {
	UpThreshold   float64
	DownThreshold float64
}

// DefaultConservativeConfig returns the kernel defaults.
func DefaultConservativeConfig() ConservativeConfig {
	return ConservativeConfig{UpThreshold: 0.80, DownThreshold: 0.20}
}

type conservative struct {
	cfg ConservativeConfig
}

// NewConservative returns the conservative governor: gradual one-step
// frequency changes driven by load thresholds.
func NewConservative(cfg ConservativeConfig) Governor {
	return &conservative{cfg: cfg}
}

func (g *conservative) Name() string { return "conservative" }

func (g *conservative) Reset() {}

func (g *conservative) Decide(ctx Context) dvfs.OPP {
	load := ctx.MaxUtilization()
	below, above, err := ctx.Table.Neighbors(ctx.Current.FreqMHz)
	if err != nil {
		return ctx.Current
	}
	switch {
	case load >= g.cfg.UpThreshold:
		return above
	case load <= g.cfg.DownThreshold:
		return below
	default:
		return ctx.Current
	}
}
