// Package governor defines the CPU frequency governor abstraction and
// the cpufreq baselines the paper compares against: performance (pin to
// max), powersave (pin to min), and interactive — the default Android
// governor, reimplemented with its hispeed / target-load /
// min-sample-time semantics. The classic Linux ondemand and
// conservative governors are included as additional period-correct
// baselines.
//
// DORA itself, and the paper's hypothetical model-based governors DL
// (deadline-only) and EE (energy-only), live in the core package; they
// satisfy the same Governor interface.
package governor

import (
	"fmt"
	"time"

	"dora/internal/dvfs"
	"dora/internal/perfmon"
	"dora/internal/telemetry"
)

// Context is what a user-space governor can observe at a decision
// point: time, the OPP table, current OPP, per-core counter windows
// (the delta since the previous decision), temperatures, and — for
// QoS-aware governors — the loading page's complexity features, the
// deadline, and how long the load has been running.
type Context struct {
	Now      time.Duration
	Elapsed  time.Duration // since page-load start (0 if no load active)
	Deadline time.Duration // QoS target (0 = none)

	Table   *dvfs.Table
	Current dvfs.OPP

	// Windows holds per-core counter deltas over the last decision
	// interval, indexed by core ID.
	Windows []perfmon.Counters
	// BrowserCores and CoRunCores identify which cores run the
	// foreground browser and the co-scheduled workloads.
	BrowserCores []int
	CoRunCores   []int

	// PageFeatures are the five Table I complexity features of the
	// page being loaded (nil when no load is in flight).
	PageFeatures []float64

	SoCTempC float64
}

// CoRunMPKI returns the aggregate L2 MPKI of the co-scheduled cores —
// model input X6.
func (c Context) CoRunMPKI() float64 {
	var agg perfmon.Counters
	for _, i := range c.CoRunCores {
		if i >= 0 && i < len(c.Windows) {
			agg = agg.Add(c.Windows[i])
		}
	}
	return agg.MPKI()
}

// CoRunUtilization returns the mean utilization of the co-scheduled
// cores — model input X9.
func (c Context) CoRunUtilization() float64 {
	if len(c.CoRunCores) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range c.CoRunCores {
		if i >= 0 && i < len(c.Windows) {
			s += c.Windows[i].Utilization()
		}
	}
	return s / float64(len(c.CoRunCores))
}

// MaxUtilization returns the highest per-core utilization — what
// cpufreq-style governors react to.
func (c Context) MaxUtilization() float64 {
	m := 0.0
	for _, w := range c.Windows {
		if u := w.Utilization(); u > m {
			m = u
		}
	}
	return m
}

// Governor picks an operating point at each decision interval.
type Governor interface {
	// Name identifies the governor in reports ("interactive", ...).
	Name() string
	// Decide returns the OPP to run until the next decision.
	Decide(ctx Context) dvfs.OPP
	// Reset clears internal state between experiment runs.
	Reset()
}

// Instrumented is implemented by governors that expose model-internal
// values of their most recent decision (predicted load time, PPW,
// feasible-candidate count, ...). The decision log attaches them to
// each record's extra fields.
type Instrumented interface {
	DecisionDetails() map[string]float64
}

// WithDecisionLog wraps g so that every decision appends one record to
// log: the model inputs the governor observed (co-run MPKI and
// utilization, max core utilization, SoC temperature, current OPP) and
// the OPP it chose. If g implements Instrumented, its details ride
// along in the record's Extra map. A nil log returns g unchanged.
func WithDecisionLog(g Governor, log *telemetry.DecisionLog) Governor {
	if log == nil {
		return g
	}
	return &logged{g: g, log: log}
}

type logged struct {
	g   Governor
	log *telemetry.DecisionLog
}

func (l *logged) Name() string { return l.g.Name() }
func (l *logged) Reset()       { l.g.Reset() }

func (l *logged) Decide(ctx Context) dvfs.OPP {
	opp := l.g.Decide(ctx)
	d := telemetry.Decision{
		TimeMs:     float64(ctx.Now) / 1e6,
		ElapsedMs:  float64(ctx.Elapsed) / 1e6,
		Governor:   l.g.Name(),
		MPKI:       ctx.CoRunMPKI(),
		CoRunUtil:  ctx.CoRunUtilization(),
		MaxUtil:    ctx.MaxUtilization(),
		TempC:      ctx.SoCTempC,
		CurMHz:     ctx.Current.FreqMHz,
		ChosenMHz:  opp.FreqMHz,
		DeadlineMs: float64(ctx.Deadline) / 1e6,
	}
	if in, ok := l.g.(Instrumented); ok {
		d.Extra = in.DecisionDetails()
	}
	l.log.Record(d)
	return opp
}

// --- performance ----------------------------------------------------

type performance struct{}

// NewPerformance returns the governor that pins the maximum OPP.
func NewPerformance() Governor { return performance{} }

func (performance) Name() string                { return "performance" }
func (performance) Decide(ctx Context) dvfs.OPP { return ctx.Table.Max() }
func (performance) Reset()                      {}

// --- powersave -------------------------------------------------------

type powersave struct{}

// NewPowersave returns the governor that pins the minimum OPP.
func NewPowersave() Governor { return powersave{} }

func (powersave) Name() string                { return "powersave" }
func (powersave) Decide(ctx Context) dvfs.OPP { return ctx.Table.Min() }
func (powersave) Reset()                      {}

// --- interactive ------------------------------------------------------

// InteractiveConfig mirrors the tunables of Android's interactive
// governor (values are the platform defaults for the Nexus 5 era).
type InteractiveConfig struct {
	// HispeedFreqMHz is the frequency jumped to when load crosses
	// GoHispeedLoad.
	HispeedFreqMHz int
	// GoHispeedLoad is the load threshold for the hispeed jump.
	GoHispeedLoad float64
	// TargetLoad is the utilization the governor steers towards.
	TargetLoad float64
	// MinSampleTime is how long a frequency must be held before the
	// governor is allowed to ramp down.
	MinSampleTime time.Duration
	// AboveHispeedDelay throttles ramping beyond hispeed.
	AboveHispeedDelay time.Duration
}

// DefaultInteractiveConfig returns the stock tunables.
func DefaultInteractiveConfig() InteractiveConfig {
	return InteractiveConfig{
		HispeedFreqMHz:    1190,
		GoHispeedLoad:     0.85,
		TargetLoad:        0.90,
		MinSampleTime:     80 * time.Millisecond,
		AboveHispeedDelay: 20 * time.Millisecond,
	}
}

type interactive struct {
	cfg InteractiveConfig

	lastRaise  time.Duration
	floorUntil time.Duration
}

// NewInteractive returns the Android default governor model.
func NewInteractive(cfg InteractiveConfig) Governor {
	return &interactive{cfg: cfg}
}

func (g *interactive) Name() string { return "interactive" }

func (g *interactive) Reset() {
	g.lastRaise = 0
	g.floorUntil = 0
}

func (g *interactive) Decide(ctx Context) dvfs.OPP {
	load := ctx.MaxUtilization()
	cur := ctx.Current
	tab := ctx.Table

	// Load expressed at the current frequency; the frequency that
	// would bring utilization to TargetLoad:
	//   f_target = load * f_cur / TargetLoad
	targetMHz := int(load * float64(cur.FreqMHz) / g.cfg.TargetLoad)
	want := tab.Ceil(targetMHz)

	// Hispeed jump: bursty load goes straight to hispeed.
	if load >= g.cfg.GoHispeedLoad {
		his := tab.Ceil(g.cfg.HispeedFreqMHz)
		if want.FreqMHz < his.FreqMHz {
			want = his
		}
		// Ramping above hispeed is rate-limited.
		if want.FreqMHz > his.FreqMHz && cur.FreqMHz >= his.FreqMHz &&
			ctx.Now-g.lastRaise < g.cfg.AboveHispeedDelay {
			want = cur
		}
	}

	switch {
	case want.FreqMHz > cur.FreqMHz:
		g.lastRaise = ctx.Now
		g.floorUntil = ctx.Now + g.cfg.MinSampleTime
		return want
	case want.FreqMHz < cur.FreqMHz:
		// Hold the floor for MinSampleTime after any raise.
		if ctx.Now < g.floorUntil {
			return cur
		}
		return want
	default:
		return cur
	}
}

// --- fixed ------------------------------------------------------------

type fixed struct {
	opp dvfs.OPP
}

// NewFixed pins an arbitrary OPP — used by the offline-optimal
// enumeration and by model training sweeps.
func NewFixed(opp dvfs.OPP) Governor { return fixed{opp: opp} }

func (f fixed) Name() string            { return "fixed" }
func (f fixed) Decide(Context) dvfs.OPP { return f.opp }
func (f fixed) Reset()                  {}

// Snapshotter is the optional interface a governor implements to make
// its internal decision state checkpointable: the sampled-fidelity
// warm-state checkpoints capture governor state at the warmup boundary
// so a restored run decides exactly as a straight-through run would.
// Stateless governors return nil. Governors that do not implement the
// interface are simply not checkpointed (the run re-warms).
type Snapshotter interface {
	// StateSnapshot returns an immutable copy of the decision state.
	StateSnapshot() any
	// RestoreState overwrites the decision state with a snapshot
	// previously returned by StateSnapshot on an equivalent governor.
	RestoreState(any)
	// StateKey identifies the governor's full configuration: two
	// governors with equal StateKeys must decide identically from
	// equal inputs. It is part of the warm-checkpoint cache key, so it
	// must cover tunables that Name() does not (the fixed governor's
	// pinned OPP, the interactive governor's thresholds).
	StateKey() string
}

// interactiveState is the interactive governor's checkpointable state.
type interactiveState struct {
	lastRaise  time.Duration
	floorUntil time.Duration
}

// StateSnapshot implements Snapshotter.
func (g *interactive) StateSnapshot() any {
	return interactiveState{lastRaise: g.lastRaise, floorUntil: g.floorUntil}
}

// RestoreState implements Snapshotter.
func (g *interactive) RestoreState(s any) {
	if st, ok := s.(interactiveState); ok {
		g.lastRaise = st.lastRaise
		g.floorUntil = st.floorUntil
	}
}

// StateKey implements Snapshotter: the tunables determine every
// decision.
func (g *interactive) StateKey() string {
	return fmt.Sprintf("interactive:%d:%g:%g:%d:%d", g.cfg.HispeedFreqMHz,
		g.cfg.GoHispeedLoad, g.cfg.TargetLoad, g.cfg.MinSampleTime, g.cfg.AboveHispeedDelay)
}

// The stateless governors snapshot trivially.

func (performance) StateSnapshot() any { return nil }
func (performance) RestoreState(any)   {}
func (performance) StateKey() string   { return "performance" }
func (powersave) StateSnapshot() any   { return nil }
func (powersave) RestoreState(any)     {}
func (powersave) StateKey() string     { return "powersave" }
func (fixed) StateSnapshot() any       { return nil }
func (fixed) RestoreState(any)         {}

// StateKey includes the pinned OPP: every fixed governor shares the
// name "fixed", but their warmups differ per operating point.
func (f fixed) StateKey() string {
	return fmt.Sprintf("fixed:%d:%d:%g", f.opp.FreqMHz, f.opp.BusFreqMHz, f.opp.VoltageV)
}
