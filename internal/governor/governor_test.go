package governor

import (
	"testing"
	"time"

	"dora/internal/dvfs"
	"dora/internal/perfmon"
)

func ctxWith(util float64, cur dvfs.OPP, now time.Duration) Context {
	busy := int64(util * 1e6)
	return Context{
		Now:     now,
		Table:   dvfs.MSM8974(),
		Current: cur,
		Windows: []perfmon.Counters{{BusyNs: busy, IdleNs: 1e6 - busy}},
	}
}

func TestPerformancePowersave(t *testing.T) {
	tab := dvfs.MSM8974()
	ctx := ctxWith(0.2, tab.Min(), 0)
	if got := NewPerformance().Decide(ctx); got.FreqMHz != tab.Max().FreqMHz {
		t.Fatalf("performance = %d", got.FreqMHz)
	}
	ctx = ctxWith(1.0, tab.Max(), 0)
	if got := NewPowersave().Decide(ctx); got.FreqMHz != tab.Min().FreqMHz {
		t.Fatalf("powersave = %d", got.FreqMHz)
	}
	if NewPerformance().Name() != "performance" || NewPowersave().Name() != "powersave" {
		t.Fatal("names wrong")
	}
	NewPerformance().Reset()
	NewPowersave().Reset()
}

func TestFixed(t *testing.T) {
	tab := dvfs.MSM8974()
	opp, _ := tab.ByFreq(1497)
	g := NewFixed(opp)
	if got := g.Decide(ctxWith(0.1, tab.Min(), 0)); got.FreqMHz != 1497 {
		t.Fatalf("fixed = %d", got.FreqMHz)
	}
	g.Reset()
}

func TestInteractiveHispeedJump(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewInteractive(DefaultInteractiveConfig())
	// Burst from idle at min frequency: load 1.0 -> jump at least to
	// hispeed (1190).
	got := g.Decide(ctxWith(1.0, tab.Min(), 10*time.Millisecond))
	if got.FreqMHz < 1190 {
		t.Fatalf("hispeed jump to %d, want >= 1190", got.FreqMHz)
	}
}

func TestInteractiveTargetLoadSteering(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewInteractive(DefaultInteractiveConfig())
	cur, _ := tab.ByFreq(2265)
	// Light load at max: the governor must choose ~load*f/target.
	got := g.Decide(ctxWith(0.3, cur, time.Second))
	want := tab.Ceil(int(0.3 * 2265 / 0.9))
	if got.FreqMHz != want.FreqMHz {
		t.Fatalf("steered to %d, want %d", got.FreqMHz, want.FreqMHz)
	}
}

func TestInteractiveMinSampleTimeFloor(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewInteractive(DefaultInteractiveConfig()).(*interactive)
	// Ramp up at t=0.
	up := g.Decide(ctxWith(1.0, tab.Min(), 0))
	if up.FreqMHz <= tab.Min().FreqMHz {
		t.Fatal("should ramp up")
	}
	// 20 ms later load drops; the floor must hold (min_sample_time 80ms).
	hold := g.Decide(ctxWith(0.05, up, 20*time.Millisecond))
	if hold.FreqMHz != up.FreqMHz {
		t.Fatalf("dropped to %d before min_sample_time", hold.FreqMHz)
	}
	// 100 ms later the drop is allowed.
	down := g.Decide(ctxWith(0.05, up, 120*time.Millisecond))
	if down.FreqMHz >= up.FreqMHz {
		t.Fatalf("still at %d after min_sample_time", down.FreqMHz)
	}
}

func TestInteractiveStableAtTarget(t *testing.T) {
	tab := dvfs.MSM8974()
	g := NewInteractive(DefaultInteractiveConfig())
	cur, _ := tab.ByFreq(1190)
	// Utilization exactly at target: stay put.
	got := g.Decide(ctxWith(0.90, cur, 500*time.Millisecond))
	if got.FreqMHz < cur.FreqMHz {
		t.Fatalf("moved from %d to %d at steady target load", cur.FreqMHz, got.FreqMHz)
	}
	g.Reset()
}

func TestContextAggregates(t *testing.T) {
	w := []perfmon.Counters{
		{Instructions: 1_000_000, L2Misses: 5_000, BusyNs: 900, IdleNs: 100},  // browser
		{Instructions: 2_000_000, L2Misses: 20_000, BusyNs: 500, IdleNs: 500}, // corun
		{Instructions: 1_000_000, L2Misses: 1_000, BusyNs: 250, IdleNs: 750},  // corun
	}
	ctx := Context{Windows: w, BrowserCores: []int{0}, CoRunCores: []int{1, 2}}
	// Co-run MPKI over aggregate: (21000)/(3e6)*1000 = 7.
	if got := ctx.CoRunMPKI(); got != 7 {
		t.Fatalf("CoRunMPKI = %v, want 7", got)
	}
	if got := ctx.CoRunUtilization(); got != (0.5+0.25)/2 {
		t.Fatalf("CoRunUtilization = %v", got)
	}
	if got := ctx.MaxUtilization(); got != 0.9 {
		t.Fatalf("MaxUtilization = %v", got)
	}
	// Out-of-range core IDs are ignored.
	ctx2 := Context{Windows: w, CoRunCores: []int{5}}
	if ctx2.CoRunMPKI() != 0 {
		t.Fatal("out-of-range co-run core must contribute nothing")
	}
	empty := Context{}
	if empty.CoRunUtilization() != 0 || empty.MaxUtilization() != 0 {
		t.Fatal("empty context aggregates must be zero")
	}
}
