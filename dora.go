// Package dora is the public facade of the DORA reproduction: a
// full-system simulation of the paper "DORA: Optimizing Smartphone
// Energy Efficiency and Web Browser Performance under Interference"
// (Shingari, Arunkumar, Gaudette, Vrudhula, Wu — ISPASS 2018).
//
// The library bundles:
//
//   - a simulated Google Nexus 5 class SoC (quad-core, private L1,
//     shared 2 MB L2 with random replacement, LPDDR3 memory channel,
//     MSM8974 DVFS ladder, RC thermal network, whole-device power
//     model);
//   - a browser rendering-engine model driven by real parsed HTML
//     (the 18-page synthetic Alexa corpus);
//   - the nine Rodinia-class co-scheduled kernels of the paper's
//     Table III;
//   - the Android interactive / performance / powersave governors;
//   - DORA itself (Algorithm 1) plus the DL and EE comparison
//     governors, trained by the included offline pipeline;
//   - an experiment suite reproducing every figure and table of the
//     paper's evaluation.
//
// # Quick start
//
//	cfg := dora.DefaultDevice()
//	models, _, err := dora.Train(dora.TrainOptions{Device: cfg, Fast: true})
//	if err != nil { ... }
//	gov, err := dora.NewDORA(models)
//	if err != nil { ... }
//	res, err := dora.LoadPage(dora.LoadOptions{
//		Device:   cfg,
//		Governor: gov,
//		Page:     "Reddit",
//		CoRunner: "backprop",
//	})
//	fmt.Printf("load %v, %.2f J, PPW %.3f\n", res.LoadTime, res.EnergyJ, res.PPW)
package dora

import (
	"context"
	"fmt"
	"time"

	"dora/internal/core"
	"dora/internal/corun"
	"dora/internal/experiment"
	"dora/internal/fidelity"
	"dora/internal/governor"
	"dora/internal/runcache"
	"dora/internal/sim"
	"dora/internal/soc"
	"dora/internal/telemetry"
	"dora/internal/train"
	"dora/internal/webgen"
)

// Re-exported core types. Aliases keep one definition of truth in the
// internal packages while giving users a single import.
type (
	// Device is the full simulated-device configuration.
	Device = soc.Config
	// Governor decides the operating point each interval.
	Governor = governor.Governor
	// Models is DORA's trained predictor bundle.
	Models = core.Models
	// Result is one measured page load.
	Result = sim.Result
	// Observation is one labelled training measurement.
	Observation = train.Observation
	// TrainReport summarizes model accuracy.
	TrainReport = train.Report
	// Suite reproduces the paper's evaluation figures.
	Suite = experiment.Suite
	// Intensity is a co-runner memory-intensity class.
	Intensity = corun.Intensity

	// Telemetry types (see internal/telemetry). Sample is one per-slice
	// observability record; Sink fans samples out to subscribers through
	// a bounded ring; Tracer records Chrome trace_event spans; DecisionLog
	// captures one record per governor decision; Registry accumulates
	// counters, gauges, and histograms with Prometheus/JSON exposition.
	Sample      = telemetry.Sample
	Sink        = telemetry.Sink
	SinkOptions = telemetry.SinkOptions
	Tracer      = telemetry.Tracer
	DecisionLog = telemetry.DecisionLog
	Registry    = telemetry.Registry

	// RunCache persists simulation results across process invocations;
	// a warm cache lets repeat campaigns and suite builds skip the
	// simulator entirely. A nil *RunCache disables caching.
	RunCache = runcache.Cache

	// Fidelity selects the simulation mode: ExactFidelity simulates
	// every sampled reference (the default), SampledFidelity detects
	// stable phases and extrapolates them from measured rates for a
	// multi-x speedup at ≤2% mean observable error (DESIGN.md §10).
	Fidelity = fidelity.Mode
	// FidelityParams tunes the sampled-mode phase detector.
	FidelityParams = fidelity.Params
	// CheckpointStore shares sampled-mode warm-state checkpoints across
	// page loads: runs that agree on device, seed, co-runner, governor
	// configuration, and warmup resume from a shared warm snapshot
	// instead of re-simulating the lead-in.
	CheckpointStore = sim.CheckpointStore
)

// OpenRunCache loads (or creates) the persistent run cache at path.
// Call Save when done to flush new entries back to disk.
func OpenRunCache(path string) (*RunCache, error) { return runcache.Open(path) }

// NewSink builds a telemetry sink (ring buffer + decimation fan-out).
func NewSink(opts SinkOptions) *Sink { return telemetry.NewSink(opts) }

// NewTracer builds a Chrome trace_event recorder; pass it via
// LoadOptions.Tracer and write the result with Tracer.WriteJSON.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewDecisionLog builds a governor decision log (JSONL/CSV exposition).
func NewDecisionLog() *DecisionLog { return telemetry.NewDecisionLog() }

// NewRegistry builds a metrics registry (Prometheus-text/JSON exposition).
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// Intensity classes (Table III).
const (
	LowIntensity    = corun.Low
	MediumIntensity = corun.Medium
	HighIntensity   = corun.High
	NoCoRunner      = corun.None
)

// Fidelity modes.
const (
	ExactFidelity   = fidelity.Exact
	SampledFidelity = fidelity.Sampled
)

// ParseFidelity parses a -fidelity flag or request-field value
// ("", "exact", or "sampled"; empty means exact).
func ParseFidelity(s string) (Fidelity, error) { return fidelity.ParseMode(s) }

// NewCheckpointStore builds an empty warm-checkpoint store to share
// across sampled-fidelity loads (safe for concurrent use).
func NewCheckpointStore() *CheckpointStore { return sim.NewCheckpointStore() }

// DefaultDevice returns the calibrated Nexus 5 (MSM8974) configuration
// of the paper's Table II.
func DefaultDevice() Device { return soc.NexusFive() }

// Pages lists the 18-page web corpus (Table III).
func Pages() []string { return webgen.Names() }

// TrainingPages lists the 14 pages used for model fitting.
func TrainingPages() []string { return webgen.TrainingNames() }

// CoRunners lists the nine co-scheduled kernels (Table III).
func CoRunners() []string {
	var out []string
	for _, k := range corun.Kernels() {
		out = append(out, k.Name)
	}
	return out
}

// TrainOptions configures the offline training pipeline.
type TrainOptions struct {
	Device Device
	Seed   int64
	// Fast shrinks the measurement campaign (for demos and tests).
	Fast bool
	// Tiny shrinks it further to a minimal demo grid (~40 runs);
	// model fidelity is reduced but the governor behaviours survive.
	Tiny bool
	// Workers bounds the campaign fan-out: 0 = one worker per CPU (or
	// the DORA_WORKERS environment override), 1 = serial. Results are
	// identical at any width.
	Workers int
	// Cache, when set, serves previously measured campaign cells from
	// disk and records fresh ones.
	Cache *RunCache
	// Fidelity selects the campaign simulation mode (default exact).
	Fidelity Fidelity
	// FidelityParams tunes sampled mode (zero value = defaults).
	FidelityParams FidelityParams
}

// Train runs the paper's offline methodology: the fixed-frequency
// measurement campaign, the static/leakage fit, and the piecewise
// response-surface fits. It returns the trained models and the
// training-set accuracy report.
func Train(opts TrainOptions) (*Models, TrainReport, error) {
	tc := train.Config{SoC: opts.Device, Seed: opts.Seed, Workers: opts.Workers, Cache: opts.Cache,
		Fidelity: opts.Fidelity, FidelityParams: opts.FidelityParams}
	switch {
	case opts.Tiny:
		tc.Pages = []string{"Alipay", "Reddit", "MSN", "Hao123"}
		tc.Intensities = []corun.Intensity{corun.None, corun.Low, corun.High}
		tc.FreqsMHz = []int{652, 729, 960, 1190, 1497, 1728, 1958, 2265}
	case opts.Fast:
		tc.Pages = []string{"Alipay", "Twitter", "MSN", "Reddit", "Amazon", "ESPN", "Hao123", "Aliexpress"}
		tc.FreqsMHz = []int{652, 729, 883, 960, 1190, 1267, 1497, 1728, 1958, 2265}
	}
	obs, err := train.Campaign(tc)
	if err != nil {
		return nil, TrainReport{}, err
	}
	static, err := train.FitStatic(train.Config{SoC: opts.Device, Seed: opts.Seed, Workers: opts.Workers, Cache: opts.Cache})
	if err != nil {
		return nil, TrainReport{}, err
	}
	return train.Fit(obs, static, 30)
}

// NewDORA builds the DORA governor (Algorithm 1) from trained models.
func NewDORA(models *Models) (Governor, error) {
	return core.New(models, core.Options{Mode: core.ModeDORA, UseLeakage: true})
}

// NewDORAWithoutLeakage builds the Fig. 10 ablation that ignores the
// live temperature.
func NewDORAWithoutLeakage(models *Models) (Governor, error) {
	return core.New(models, core.Options{Mode: core.ModeDORA, UseLeakage: false})
}

// NewDeadlineOnly builds the paper's DL comparison governor.
func NewDeadlineOnly(models *Models) (Governor, error) {
	return core.New(models, core.Options{Mode: core.ModeDL, UseLeakage: true})
}

// NewEnergyOnly builds the paper's EE comparison governor.
func NewEnergyOnly(models *Models) (Governor, error) {
	return core.New(models, core.Options{Mode: core.ModeEE, UseLeakage: true})
}

// NewInteractive builds the Android default governor (the paper's
// baseline).
func NewInteractive() Governor {
	return governor.NewInteractive(governor.DefaultInteractiveConfig())
}

// NewPerformance builds the max-frequency governor.
func NewPerformance() Governor { return governor.NewPerformance() }

// NewPowersave builds the min-frequency governor.
func NewPowersave() Governor { return governor.NewPowersave() }

// NewOndemand builds the classic Linux ondemand governor.
func NewOndemand() Governor {
	return governor.NewOndemand(governor.DefaultOndemandConfig())
}

// NewConservative builds the step-at-a-time conservative governor.
func NewConservative() Governor {
	return governor.NewConservative(governor.DefaultConservativeConfig())
}

// NewFixed pins the closest OPP at or above the given frequency.
func NewFixed(dev Device, freqMHz int) Governor {
	return governor.NewFixed(dev.OPPs.Ceil(freqMHz))
}

// LoadOptions configures one measured page load.
type LoadOptions struct {
	Device   Device
	Governor Governor
	// Page is a corpus page name (see Pages).
	Page string
	// CoRunner is a kernel name (see CoRunners); empty = browser alone.
	CoRunner string
	// Deadline is the QoS target (default 3 s).
	Deadline time.Duration
	// DecisionInterval is the governor cadence (default 20 ms for the
	// cpufreq baselines; use 100 ms for model-based governors, as the
	// paper does).
	DecisionInterval time.Duration
	// Warmup is the co-runner-only lead-in before the measured load
	// begins (default 500 ms).
	Warmup time.Duration
	// MaxLoadTime aborts a load that runs past the cutoff (default 30 s).
	MaxLoadTime time.Duration
	Seed        int64
	// AmbientC overrides ambient temperature (0 = 25 degC).
	AmbientC float64
	// TraceFn, when set, receives one observability sample per
	// simulated millisecond (frequency, power, temperature, bus
	// utilization). Legacy single-subscriber hook; prefer Sink.
	TraceFn func(soc.TraceSample)
	// Sink receives the same per-slice samples through the
	// multi-subscriber telemetry sink.
	Sink *Sink
	// Tracer records Chrome trace_event spans for the run.
	Tracer *Tracer
	// Decisions receives one record per governor decision interval.
	Decisions *DecisionLog
	// Metrics accumulates run counters, gauges, and histograms.
	Metrics *Registry
	// Fidelity selects the simulation mode (default exact).
	Fidelity Fidelity
	// FidelityParams tunes sampled mode (zero value = defaults).
	FidelityParams FidelityParams
	// Checkpoints, when set with SampledFidelity, shares warm-state
	// checkpoints across loads (only consulted when no observer —
	// TraceFn, Sink, Tracer, Decisions, Metrics — is attached).
	Checkpoints *CheckpointStore
}

// LoadPage performs one end-to-end measured page load.
func LoadPage(opts LoadOptions) (Result, error) {
	return LoadPageContext(context.Background(), opts)
}

// LoadPageContext is LoadPage with cooperative cancellation: a
// cancelled or deadline-expired context aborts the simulation promptly
// and returns an error wrapping ctx.Err(). A run that completes is
// bit-identical to LoadPage with the same options — cancellation can
// only abort, never perturb. This is the entry point the dorad daemon
// uses to honor per-request deadlines.
func LoadPageContext(ctx context.Context, opts LoadOptions) (Result, error) {
	spec, err := webgen.ByName(opts.Page)
	if err != nil {
		return Result{}, err
	}
	wl := sim.Workload{Page: spec}
	if opts.CoRunner != "" {
		k, err := corun.ByName(opts.CoRunner)
		if err != nil {
			return Result{}, err
		}
		wl.CoRun = &k
	}
	if opts.Governor == nil {
		return Result{}, fmt.Errorf("dora: nil governor")
	}
	return sim.LoadPageCtx(ctx, sim.Options{
		SoC:              opts.Device,
		Governor:         opts.Governor,
		Deadline:         opts.Deadline,
		DecisionInterval: opts.DecisionInterval,
		Warmup:           opts.Warmup,
		MaxLoadTime:      opts.MaxLoadTime,
		Seed:             opts.Seed,
		AmbientC:         opts.AmbientC,
		TraceFn:          opts.TraceFn,
		Sink:             opts.Sink,
		Tracer:           opts.Tracer,
		Decisions:        opts.Decisions,
		Metrics:          opts.Metrics,
		Fidelity:         opts.Fidelity,
		FidelityParams:   opts.FidelityParams,
		Checkpoints:      opts.Checkpoints,
	}, wl)
}

// NewSuite trains models and returns the paper-evaluation suite. Set
// fast for a reduced (but shape-preserving) campaign.
func NewSuite(dev Device, seed int64, fast bool) (*Suite, error) {
	return NewSuiteOpts(SuiteOptions{Device: dev, Seed: seed, Fast: fast})
}

// SuiteOptions configures NewSuiteOpts.
type SuiteOptions struct {
	Device Device
	Seed   int64
	// Fast shrinks the training grid; Tiny shrinks it further (wins
	// over Fast) for benchmarks that build several suites per process.
	Fast bool
	Tiny bool
	// Workers bounds the measurement fan-out for both the training
	// campaign and the suite's exhibit prefetching (0 = one worker per
	// CPU or the DORA_WORKERS override, 1 = serial). Any width yields
	// bit-identical observations, models, and figures.
	Workers int
	// Cache, when set, persists every measurement (campaign cells,
	// static-fit parameters, exhibit runs) across processes.
	Cache *RunCache
	// Fidelity selects the training-campaign simulation mode (default
	// exact).
	Fidelity Fidelity
	// FidelityParams tunes sampled mode (zero value = defaults).
	FidelityParams FidelityParams
}

// NewSuiteOpts trains models and returns the paper-evaluation suite
// with explicit parallelism and caching control.
func NewSuiteOpts(opts SuiteOptions) (*Suite, error) {
	return experiment.NewSuite(experiment.TrainingConfig{
		SoC:            opts.Device,
		Seed:           opts.Seed,
		Fast:           opts.Fast,
		Tiny:           opts.Tiny,
		Workers:        opts.Workers,
		Cache:          opts.Cache,
		Fidelity:       opts.Fidelity,
		FidelityParams: opts.FidelityParams,
	})
}
