package dora

import (
	"sync"
	"testing"
	"time"
)

var (
	apiOnce   sync.Once
	apiModels *Models
	apiErr    error
)

// apiTrain trains one very small model set for the API tests.
func apiTrain(t *testing.T) *Models {
	t.Helper()
	apiOnce.Do(func() {
		// Smaller than Fast: just enough for plumbing.
		apiModels, _, apiErr = trainTiny()
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiModels
}

func TestCorpusAndKernelLists(t *testing.T) {
	if len(Pages()) != 18 {
		t.Fatalf("Pages = %d, want 18", len(Pages()))
	}
	if len(TrainingPages()) != 14 {
		t.Fatalf("TrainingPages = %d, want 14", len(TrainingPages()))
	}
	if len(CoRunners()) != 9 {
		t.Fatalf("CoRunners = %d, want 9", len(CoRunners()))
	}
}

func TestDefaultDevice(t *testing.T) {
	dev := DefaultDevice()
	if err := dev.Validate(); err != nil {
		t.Fatal(err)
	}
	if dev.OPPs.Len() != 14 {
		t.Fatalf("OPP ladder = %d, want 14", dev.OPPs.Len())
	}
}

func TestBaselineGovernors(t *testing.T) {
	if NewInteractive().Name() != "interactive" {
		t.Fatal("interactive name")
	}
	if NewPerformance().Name() != "performance" {
		t.Fatal("performance name")
	}
	if NewPowersave().Name() != "powersave" {
		t.Fatal("powersave name")
	}
	dev := DefaultDevice()
	if NewFixed(dev, 1000).Name() != "fixed" {
		t.Fatal("fixed name")
	}
}

func TestLoadPageWithBaselineGovernor(t *testing.T) {
	res, err := LoadPage(LoadOptions{
		Device:   DefaultDevice(),
		Governor: NewFixed(DefaultDevice(), 2265),
		Page:     "Alipay",
		CoRunner: "kmeans",
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadTime <= 0 || res.PPW <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.CoRunName != "kmeans" {
		t.Fatalf("co-runner = %q", res.CoRunName)
	}
}

func TestLoadPageErrors(t *testing.T) {
	if _, err := LoadPage(LoadOptions{Device: DefaultDevice(), Governor: NewPerformance(), Page: "nope"}); err == nil {
		t.Fatal("unknown page must error")
	}
	if _, err := LoadPage(LoadOptions{Device: DefaultDevice(), Governor: NewPerformance(), Page: "MSN", CoRunner: "nope"}); err == nil {
		t.Fatal("unknown co-runner must error")
	}
	if _, err := LoadPage(LoadOptions{Device: DefaultDevice(), Page: "MSN"}); err == nil {
		t.Fatal("nil governor must error")
	}
}

func TestTrainedGovernorsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models (tiny grid, ~30 s)")
	}
	models := apiTrain(t)
	dora, err := NewDORA(models)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LoadPage(LoadOptions{
		Device:           DefaultDevice(),
		Governor:         dora,
		Page:             "MSN",
		CoRunner:         "backprop",
		DecisionInterval: 100 * time.Millisecond,
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Governor != "DORA" {
		t.Fatalf("governor = %q", res.Governor)
	}
	if res.LoadTime <= 0 {
		t.Fatal("no load time")
	}
	for _, mk := range []func(*Models) (Governor, error){NewDeadlineOnly, NewEnergyOnly, NewDORAWithoutLeakage} {
		if _, err := mk(models); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid models rejected.
	if _, err := NewDORA(&Models{}); err == nil {
		t.Fatal("empty models must be rejected")
	}
}
