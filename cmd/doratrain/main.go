// Command doratrain runs DORA's offline training pipeline on the
// simulated device — the reproduction of the paper's Section IV-C
// methodology — and writes the fitted models to a JSON file usable by
// dorasim and dorarepro.
//
// Usage:
//
//	doratrain [-fast] [-seed N] [-out models.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dora"
	"dora/internal/core"
	"dora/internal/obslog"
	"dora/internal/pool"
	"dora/internal/profiling"
	"dora/internal/stats"
	"dora/internal/tablefmt"
	"dora/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doratrain: ")
	fast := flag.Bool("fast", false, "reduced campaign grid (quicker, lower fidelity)")
	seed := flag.Int64("seed", 1, "campaign random seed")
	fidelityFlag := flag.String("fidelity", "exact", "campaign simulation fidelity: exact|sampled (sampled fast-forwards phase-stable slices)")
	out := flag.String("out", "models.json", "output path for the trained models")
	obsOut := flag.String("obs", "", "also save the raw campaign observations to this JSON file")
	obsIn := flag.String("from-obs", "", "skip the campaign and fit from a saved observations file")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = one per CPU or $DORA_WORKERS, 1 = serial)")
	cachePath := flag.String("runcache", "", "persistent run cache file; warm caches skip already-measured cells")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, logCloser, err := logFlags.Open("doratrain")
	if err != nil {
		log.Fatal(err)
	}
	defer logCloser.Close()

	nworkers, err := pool.ResolveWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	fid, err := dora.ParseFidelity(*fidelityFlag)
	if err != nil {
		log.Fatal(err)
	}

	var cache *dora.RunCache
	if *cachePath != "" {
		c, err := dora.OpenRunCache(*cachePath)
		if err != nil {
			log.Fatal(err)
		}
		cache = c
		fmt.Printf("run cache %s: %d entries\n", *cachePath, cache.Len())
	}

	dev := dora.DefaultDevice()
	var models *core.Models
	var report dora.TrainReport
	if *obsIn != "" {
		fmt.Printf("fitting from saved campaign %s...\n", *obsIn)
		var obs []train.Observation
		obs, err = train.LoadObservations(*obsIn)
		if err != nil {
			log.Fatal(err)
		}
		var static core.StaticPower
		static, err = train.FitStatic(train.Config{SoC: dev, Seed: *seed, Workers: nworkers, Cache: cache})
		if err != nil {
			log.Fatal(err)
		}
		models, report, err = train.Fit(obs, static, 30)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("running measurement campaign (this simulates hundreds of page loads)...")
		logger.Info().Bool("fast", *fast).Int64("seed", *seed).Int("workers", nworkers).
			Str("fidelity", fid.String()).Msg("measurement campaign starting")
		tc := train.Config{SoC: dev, Seed: *seed, Workers: nworkers, Cache: cache, Fidelity: fid}
		if *fast {
			tc.Pages = []string{"Alipay", "Twitter", "MSN", "Reddit", "Amazon", "ESPN", "Hao123", "Aliexpress"}
			tc.FreqsMHz = []int{652, 729, 883, 960, 1190, 1267, 1497, 1728, 1958, 2265}
		}
		var obs []train.Observation
		obs, err = train.Campaign(tc)
		if err != nil {
			log.Fatal(err)
		}
		if *obsOut != "" {
			if err := train.SaveObservations(*obsOut, obs); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("campaign observations written to %s\n", *obsOut)
		}
		var static core.StaticPower
		static, err = train.FitStatic(train.Config{SoC: dev, Seed: *seed, Workers: nworkers, Cache: cache})
		if err != nil {
			log.Fatal(err)
		}
		models, report, err = train.Fit(obs, static, 30)
		if err != nil {
			log.Fatal(err)
		}
	}

	if cache != nil {
		if err := cache.Save(); err != nil {
			log.Fatal(err)
		}
		hits, misses, stores := cache.Stats()
		fmt.Printf("run cache %s: %d hits, %d misses, %d new entries (now %d total)\n",
			cache.Path(), hits, misses, stores, cache.Len())
	}

	logger.Info().
		Int("observations", report.Observations).
		Float("time_mape_pct", report.TimeMetrics.MAPE*100).
		Float("power_mape_pct", report.PowerMetrics.MAPE*100).
		Msg("models fitted")

	t := tablefmt.New("Model accuracy (training set)", "model", "mean_error_pct", "max_error_pct", "n")
	t.AddRow("load time (interaction surface)", report.TimeMetrics.MAPE*100, report.TimeMetrics.MaxAPE*100, report.Observations)
	t.AddRow("power (linear + Eq.5 static)", report.PowerMetrics.MAPE*100, report.PowerMetrics.MaxAPE*100, report.Observations)
	fmt.Println(t.String())

	cdf := stats.NewCDF(report.TimeErrors)
	fmt.Printf("load-time error CDF: %.0f%% of predictions under 5%% error, %.0f%% under 10%%\n",
		cdf.At(0.05)*100, cdf.At(0.10)*100)
	fmt.Printf("paper reference: 2.5%% mean load-time error, 4.0%% mean power error\n\n")

	data, err := json.MarshalIndent(models, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models written to %s\n", *out)
}
