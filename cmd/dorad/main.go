// Command dorad serves the DORA simulator over HTTP: page-load
// simulations (POST /v1/load), measurement-campaign grids
// (POST /v1/campaign), the binary stream transport (GET /v1/stream,
// connection upgrade; see internal/wire), corpus discovery
// (GET /v1/pages), Prometheus metrics (GET /metrics), a JSON process
// snapshot (GET /debug/vars), and a drain-aware health check
// (GET /healthz).
//
// The daemon applies backpressure (429 + jittered Retry-After when the
// bounded admission queue fills), deduplicates identical in-flight
// requests onto one simulation, serves repeats from the persistent run
// cache, and on SIGINT/SIGTERM drains gracefully: in-flight
// simulations run to completion while new requests are refused with
// 503. Shutdown ends with a structured summary of the daemon's whole
// life: requests served, load shed, dedup joins, cache hits.
//
// Observability: every response carries X-Dora-Request-Id (generated,
// or propagated from the request); -log-level/-log-file emit
// structured key=value logs including one "access" line per request;
// -pprof opts into the net/http/pprof endpoints.
//
// Usage:
//
//	dorad [-addr :8077] [-models models.json] [-runcache cache.json]
//	      [-workers N] [-concurrency N] [-queue N]
//	      [-timeout 30s] [-drain-timeout 30s] [-pprof]
//	      [-log-level info,access=warn] [-log-file dorad.log]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dora/internal/core"
	"dora/internal/fidelity"
	"dora/internal/obslog"
	"dora/internal/pool"
	"dora/internal/runcache"
	"dora/internal/serve"
	"dora/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dorad: ")
	addr := flag.String("addr", ":8077", "listen address")
	modelsPath := flag.String("models", "", "trained models JSON; enables the DORA/DL/EE governors")
	cachePath := flag.String("runcache", "", "persistent run cache file (saved on shutdown)")
	workers := flag.Int("workers", 0, "campaign fan-out width (0 = one per CPU or $DORA_WORKERS)")
	concurrency := flag.Int("concurrency", 0, "requests simulated at once (0 = serve default)")
	queue := flag.Int("queue", 0, "admitted requests waiting beyond -concurrency before 429 (0 = serve default)")
	timeout := flag.Duration("timeout", 0, "default per-request processing deadline when the request sets no timeout_ms (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight simulations")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes profiling internals; opt-in)")
	fidelityFlag := flag.String("fidelity", "exact", "default simulation fidelity for requests that omit the field: exact|sampled")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, logCloser, err := logFlags.Open("dorad")
	if err != nil {
		log.Fatal(err)
	}
	defer logCloser.Close()

	nworkers, err := pool.ResolveWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}

	var models *core.Models
	if *modelsPath != "" {
		data, err := os.ReadFile(*modelsPath)
		if err != nil {
			log.Fatal(err)
		}
		var m core.Models
		if err := json.Unmarshal(data, &m); err != nil {
			log.Fatalf("parse %s: %v", *modelsPath, err)
		}
		models = &m
	}

	var cache *runcache.Cache
	if *cachePath != "" {
		cache, err = runcache.Open(*cachePath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("run cache %s: %d entries", *cachePath, cache.Len())
	}

	fid, err := fidelity.ParseMode(*fidelityFlag)
	if err != nil {
		log.Fatal(err)
	}

	srv := serve.NewServer(serve.Config{
		Models:          models,
		Workers:         nworkers,
		Concurrency:     *concurrency,
		MaxQueue:        *queue,
		DefaultTimeout:  *timeout,
		Cache:           cache,
		DefaultFidelity: fid.String(),
		Metrics:         telemetry.NewRegistry(),
		Log:             logger,
		EnablePprof:     *pprof,
	})

	// Hardened listener: header/read/write/idle deadlines plus a header
	// budget, so slow or hostile clients cannot pin connections (or a
	// later drain) open indefinitely. The stream transport applies its
	// own frame-level deadlines after the upgrade.
	hs := serve.NewHTTPServer(*addr, srv.Handler())
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d, models=%v, cache=%v, pprof=%v)",
		*addr, nworkers, models != nil, cache != nil, *pprof)
	logger.Info().
		Str("addr", *addr).
		Int("workers", nworkers).
		Bool("models", models != nil).
		Bool("cache", cache != nil).
		Bool("pprof", *pprof).
		Msg("listening")

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("%s: draining (up to %s)...", sig, *drainTimeout)
		logger.Info().Str("signal", sig.String()).Dur("drain_timeout_ms", *drainTimeout).Msg("draining")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	// Drain order: refuse new simulation work first, then let the HTTP
	// server wait out open connections (whose handlers finish their
	// simulations), then mop up detached flight leaders.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.BeginDrain()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v (forcing)", err)
		logger.Warn().Err(err).Msg("shutdown forced")
	}
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
		logger.Warn().Err(err).Msg("drain incomplete")
	}
	if cache != nil {
		if err := cache.Save(); err != nil {
			log.Print(err)
		}
	}

	// Lifetime summary: one structured line (grep-able from the log
	// stream) and a human-readable stdout recap.
	st := srv.Stats()
	logger.Info().
		Uint64("requests", st.Requests).
		Uint64("admission_rejects", st.AdmissionRejects).
		Uint64("drain_rejects", st.DrainRejects).
		Uint64("deadline_expired", st.DeadlineExpired).
		Uint64("dedup_joins", st.DedupJoins).
		Uint64("sim_executions", st.SimExecutions).
		Uint64("cache_hits", st.CacheHits).
		Uint64("cache_misses", st.CacheMisses).
		Uint64("campaign_cells", st.CampaignCells).
		Msg("shutdown summary")
	fmt.Printf("served %d requests (%d sims, %d dedup joins, %d cache hits, %d campaign cells; shed %d, drain-refused %d, deadline-expired %d)\n",
		st.Requests, st.SimExecutions, st.DedupJoins, st.CacheHits,
		st.CampaignCells, st.AdmissionRejects, st.DrainRejects, st.DeadlineExpired)
	if cache != nil {
		hits, misses, stores := cache.Stats()
		fmt.Printf("run cache %s: %d hits, %d misses, %d new entries\n",
			cache.Path(), hits, misses, stores)
	}
}
