// Command doraload generates HTTP load against dorad and reports
// client-observed latency percentiles, throughput, and response
// provenance (fresh simulation vs. dedup vs. run cache) — the serving
// companion to the kernel benchmarks, in the spirit of aisloader.
//
// Modes:
//
//	doraload -target http://host:8077 [-duration 5s] [-c 8] [-qps 50]
//	    drive an already-running daemon (closed loop by default,
//	    open loop when -qps is set)
//	doraload -self [-duration 5s] ...
//	    start an in-process dorad on a loopback port and drive that;
//	    used by `make bench-serve` and the CI smoke job so the
//	    benchmark needs no external daemon
//	doraload -validate BENCH_SERVE.json
//	    schema-check a committed report and exit
//
// The JSON report (-json) is the BENCH_SERVE.json document; its shape
// is validated by the same code (-validate) CI runs against the
// committed file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dora/internal/loadgen"
	"dora/internal/obslog"
	"dora/internal/runcache"
	"dora/internal/serve"
	"dora/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doraload: ")

	target := flag.String("target", "", "base URL of a running dorad (e.g. http://127.0.0.1:8077)")
	self := flag.Bool("self", false, "start an in-process dorad on a loopback port and drive it")
	transport := flag.String("transport", "json", "serving transport: json | stream | both (both = same mix on each, side-by-side report)")
	compress := flag.Bool("compress", false, "negotiate per-frame compression on the stream transport")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("c", 4, "workers (closed loop) / max in-flight requests (open loop)")
	qps := flag.Float64("qps", 0, "open-loop arrival rate; 0 = closed loop")
	campaignFrac := flag.Float64("campaign-frac", 0.1, "fraction of requests issued as campaign grids")
	repeatFrac := flag.Float64("repeat-frac", 0.4, "fraction of requests repeating an earlier body (exercises dedup + run cache)")
	fidelityFrac := flag.Float64("fidelity-frac", 0, "fraction of fresh requests issued with fidelity \"sampled\"")
	pages := flag.String("pages", "Alipay", "comma-separated page mix")
	governors := flag.String("governors", "interactive", "comma-separated governor mix")
	seed := flag.Int64("seed", 1, "request-mix seed (same seed = same request sequence)")
	warmupMs := flag.Int64("warmup-ms", 0, "warmup_ms on every request (0 = daemon default)")
	maxLoadMs := flag.Int64("max-load-ms", 0, "max_load_ms on every load request (0 = daemon default)")
	timeoutMs := flag.Int64("timeout-ms", 0, "timeout_ms on every request (0 = none)")
	jsonOut := flag.String("json", "", "write the BENCH_SERVE report to this file ('-' = stdout)")
	pr := flag.Int("pr", 8, "PR number stamped into the report")
	validate := flag.String("validate", "", "schema-check this BENCH_SERVE.json and exit")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			log.Fatal(err)
		}
		if err := loadgen.ValidateJSON(data); err != nil {
			log.Fatalf("%s: %v", *validate, err)
		}
		fmt.Printf("%s: valid %s document\n", *validate, loadgen.Schema)
		return
	}

	logger, logCloser, err := logFlags.Open("doraload")
	if err != nil {
		log.Fatal(err)
	}
	defer logCloser.Close()

	baseURL := *target
	var shutdownSelf func()
	if *self {
		if baseURL != "" {
			log.Fatal("-self and -target are mutually exclusive")
		}
		baseURL, shutdownSelf, err = startSelf(logger)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdownSelf()
	}
	if baseURL == "" {
		log.Fatal("need -target URL or -self (or -validate FILE); see -h")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:      baseURL,
		Transport:    *transport,
		Compress:     *compress,
		Duration:     *duration,
		Concurrency:  *concurrency,
		QPS:          *qps,
		CampaignFrac: *campaignFrac,
		RepeatFrac:   *repeatFrac,
		FidelityFrac: *fidelityFrac,
		Pages:        splitList(*pages),
		Governors:    splitList(*governors),
		Seed:         *seed,
		WarmupMs:     *warmupMs,
		MaxLoadMs:    *maxLoadMs,
		TimeoutMs:    *timeoutMs,
		Log:          logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.PR = *pr
	if err := rep.Validate(); err != nil {
		log.Fatalf("generated report fails its own schema: %v", err)
	}

	printSummary(&rep)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// startSelf boots an in-process dorad on a loopback port with a
// throwaway run cache (so -repeat-frac exercises warm hits the same
// way it would against a long-running daemon) and returns its base
// URL plus a shutdown func.
func startSelf(logger *obslog.Logger) (string, func(), error) {
	dir, err := os.MkdirTemp("", "doraload-self-*")
	if err != nil {
		return "", nil, err
	}
	cache, err := runcache.Open(filepath.Join(dir, "cache.json"))
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	srv := serve.NewServer(serve.Config{
		Cache:   cache,
		Metrics: telemetry.NewRegistry(),
		Log:     logger,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := serve.NewHTTPServer("", srv.Handler())
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("self daemon: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	log.Printf("self daemon on %s (throwaway cache in %s)", base, dir)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.BeginDrain()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("self daemon shutdown: %v", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Printf("self daemon drain: %v", err)
		}
		os.RemoveAll(dir)
	}
	return base, shutdown, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func printSummary(r *loadgen.Report) {
	fmt.Printf("target      %s (%s loop", r.Target, r.Mode)
	if r.QPS > 0 {
		fmt.Printf(", %.0f qps offered", r.QPS)
	}
	fmt.Printf(", c=%d)\n", r.Concurrency)
	for _, key := range []string{loadgen.TransportJSON, loadgen.TransportStream} {
		t := r.Transports[key]
		if t == nil {
			continue
		}
		fmt.Printf("[%s] %.1fs\n", t.Transport, t.DurationS)
		fmt.Printf("  requests    %d (%.1f req/s, %d errors, %d missed ticks)\n",
			t.Requests, t.ThroughputRPS, t.Errors, t.MissedTicks)
		fmt.Printf("  latency ms  p50=%.2f p90=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f\n",
			t.Latency.P50Ms, t.Latency.P90Ms, t.Latency.P95Ms, t.Latency.P99Ms,
			t.Latency.MeanMs, t.Latency.MaxMs)
		if t.CampaignFirstResult != nil {
			fmt.Printf("  campaign ms first-result p50=%.2f p99=%.2f | full p50=%.2f p99=%.2f\n",
				t.CampaignFirstResult.P50Ms, t.CampaignFirstResult.P99Ms,
				t.CampaignFull.P50Ms, t.CampaignFull.P99Ms)
		}
		fmt.Printf("  status      %v\n", t.Status)
		fmt.Printf("  sources     %v (dedup %.1f%%, cache %.1f%%)\n",
			t.Sources, 100*t.DedupRate, 100*t.CacheHitRate)
	}
	if c := r.Comparison; c != nil {
		fmt.Printf("stream vs json: throughput x%.2f, p50 x%.2f, p99 x%.2f",
			c.ThroughputGain, c.P50Speedup, c.P99Speedup)
		if c.FirstResultSpeedup > 0 {
			fmt.Printf(", campaign first-result x%.2f", c.FirstResultSpeedup)
		}
		fmt.Println()
	}
}
