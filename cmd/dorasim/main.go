// Command dorasim runs a single measured page load on the simulated
// device under a chosen frequency governor.
//
// Usage:
//
//	dorasim -page Reddit -corun backprop -governor interactive
//	dorasim -page MSN -corun bfs -governor DORA -models models.json
//	dorasim -page ESPN -freq 1497
//	dorasim -page Reddit -corun srad -trace out.json -decisions dec.jsonl -metrics m.prom
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"dora"
	"dora/internal/asciichart"
	"dora/internal/core"
	"dora/internal/obslog"
	"dora/internal/pool"
	"dora/internal/profiling"
	"dora/internal/runcache"
	"dora/internal/sim"
	"dora/internal/soc"
	"dora/internal/tablefmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dorasim: ")
	page := flag.String("page", "Reddit", "web page to load (see -list)")
	coRun := flag.String("corun", "", "co-scheduled kernel (empty = browser alone)")
	govName := flag.String("governor", "interactive", "interactive|performance|powersave|DORA|DL|EE")
	freq := flag.Int("freq", 0, "pin a fixed frequency in MHz instead of a governor")
	deadline := flag.Duration("deadline", 3*time.Second, "QoS load-time target")
	modelsPath := flag.String("models", "", "trained models JSON (required for DORA/DL/EE)")
	seed := flag.Int64("seed", 1, "simulation seed")
	fidelityFlag := flag.String("fidelity", "exact", "simulation fidelity: exact|sampled (sampled fast-forwards phase-stable slices)")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file (load into Perfetto / chrome://tracing)")
	traceCSV := flag.String("tracecsv", "", "write a per-millisecond CSV trace (time,freq,power,temp,bus_util) to this file")
	decisions := flag.String("decisions", "", "write the governor decision log (.csv for CSV, anything else for JSONL)")
	metrics := flag.String("metrics", "", "write run metrics (.json for JSON, anything else for Prometheus text)")
	cachePath := flag.String("runcache", "", "persistent run cache file; repeat identical runs are served from it (ignored when trace/decision/metric outputs are requested)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	list := flag.Bool("list", false, "list pages and kernels, then exit")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, logCloser, err := logFlags.Open("dorasim")
	if err != nil {
		log.Fatal(err)
	}
	defer logCloser.Close()

	// dorasim runs a single load, but a malformed $DORA_WORKERS is still
	// a configuration error the user should hear about up front, through
	// the same validator every command shares.
	if _, err := pool.ResolveWorkers(0); err != nil {
		log.Fatal(err)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	if *list {
		fmt.Println("pages:")
		for _, p := range dora.Pages() {
			fmt.Printf("  %s\n", p)
		}
		fmt.Println("co-run kernels:")
		for _, k := range dora.CoRunners() {
			fmt.Printf("  %s\n", k)
		}
		return
	}

	dev := dora.DefaultDevice()
	gov, interval, models, err := buildGovernor(dev, *govName, *freq, *modelsPath)
	if err != nil {
		log.Fatal(err)
	}
	fid, err := dora.ParseFidelity(*fidelityFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Trace, decision-log, and metric outputs need a live simulation,
	// so the cache only serves runs when none are requested.
	var cache *runcache.Cache
	var cacheKey string
	if *cachePath != "" {
		cache, err = runcache.Open(*cachePath)
		if err != nil {
			log.Fatal(err)
		}
		if *trace == "" && *traceCSV == "" && *decisions == "" && *metrics == "" {
			cacheKey = runcache.Key("dorasim-run", sim.ConfigFingerprint(dev),
				*seed, *page, *coRun, *govName, *freq, *deadline, models, fid.String())
		}
	}

	var traceBuf strings.Builder
	opts := dora.LoadOptions{
		Device:           dev,
		Governor:         gov,
		Page:             *page,
		CoRunner:         *coRun,
		Deadline:         *deadline,
		DecisionInterval: interval,
		Seed:             *seed,
		Fidelity:         fid,
	}
	if *traceCSV != "" {
		traceBuf.WriteString("time_s,freq_mhz,power_w,soc_temp_c,bus_util\n")
		opts.TraceFn = func(s soc.TraceSample) {
			fmt.Fprintf(&traceBuf, "%.3f,%d,%.3f,%.2f,%.3f\n",
				s.Now.Seconds(), s.FreqMHz, s.PowerW, s.SoCTempC, s.BusUtil)
		}
	}
	if *trace != "" {
		opts.Tracer = dora.NewTracer()
	}
	if *decisions != "" {
		opts.Decisions = dora.NewDecisionLog()
	}
	reg := dora.NewRegistry()
	opts.Metrics = reg

	// Per-millisecond frequency/temperature history for the sparklines.
	var freqHist, tempHist []float64
	sink := dora.NewSink(dora.SinkOptions{})
	sink.Subscribe(func(s dora.Sample) {
		freqHist = append(freqHist, float64(s.FreqMHz))
		tempHist = append(tempHist, s.SoCTempC)
	})
	opts.Sink = sink

	logger.Debug().
		Str("page", *page).
		Str("corunner", *coRun).
		Str("governor", gov.Name()).
		Int64("seed", *seed).
		Bool("cacheable", cacheKey != "").
		Msg("starting page load")
	var res dora.Result
	if cacheKey != "" && cache.Get(cacheKey, &res) {
		fmt.Printf("run served from cache %s (sparklines need a live run)\n", cache.Path())
		logger.Info().Str("cache", cache.Path()).Msg("run served from cache")
	} else {
		res, err = dora.LoadPage(opts)
		if err != nil {
			logger.Error().Err(err).Str("page", *page).Msg("page load failed")
			log.Fatal(err)
		}
		logger.Info().
			Str("page", res.Page).
			Str("governor", gov.Name()).
			Dur("load_time_ms", res.LoadTime).
			Float("energy_j", res.EnergyJ).
			Bool("deadline_met", res.DeadlineMet).
			Msg("page load complete")
		if cacheKey != "" {
			cache.Put(cacheKey, res)
			if err := cache.Save(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *traceCSV != "" {
		if err := os.WriteFile(*traceCSV, []byte(traceBuf.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("csv trace written to %s\n", *traceCSV)
	}
	if *trace != "" {
		if err := writeFileWith(*trace, opts.Tracer.WriteJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace written to %s (%d events)\n", *trace, opts.Tracer.Len())
	}
	if *decisions != "" {
		w := opts.Decisions.WriteJSONL
		if strings.HasSuffix(*decisions, ".csv") {
			w = opts.Decisions.WriteCSV
		}
		if err := writeFileWith(*decisions, w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decision log written to %s (%d records)\n", *decisions, opts.Decisions.Len())
	}
	if *metrics != "" {
		w := reg.WritePrometheus
		if strings.HasSuffix(*metrics, ".json") {
			w = reg.WriteJSON
		}
		if err := writeFileWith(*metrics, w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}

	t := tablefmt.New(fmt.Sprintf("%s + %s under %s", res.Page, orNone(res.CoRunName), gov.Name()),
		"metric", "value")
	t.AddRowStrings("load time", res.LoadTime.String())
	t.AddRowStrings("deadline met", fmt.Sprint(res.DeadlineMet))
	t.AddRowStrings("energy", fmt.Sprintf("%.2f J", res.EnergyJ))
	t.AddRowStrings("avg device power", fmt.Sprintf("%.2f W", res.AvgPowerW))
	t.AddRowStrings("PPW (1/J)", fmt.Sprintf("%.4f", res.PPW))
	t.AddRowStrings("co-run L2 MPKI", fmt.Sprintf("%.2f", res.AvgCoRunMPKI))
	t.AddRowStrings("co-run utilization", fmt.Sprintf("%.2f", res.AvgCoRunUtil))
	t.AddRowStrings("max SoC temp", fmt.Sprintf("%.1f C", res.MaxSoCTempC))
	t.AddRowStrings("frequency switches", fmt.Sprint(res.Switches))
	fmt.Println(t.String())

	type resid struct {
		f int
		d time.Duration
	}
	var rs []resid
	for f, d := range res.FreqResidency {
		rs = append(rs, resid{f, d})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].f < rs[j].f })
	rt := tablefmt.New("Frequency residency", "freq_mhz", "time", "share_pct")
	for _, r := range rs {
		rt.AddRowStrings(fmt.Sprint(r.f), r.d.String(),
			fmt.Sprintf("%.1f", 100*float64(r.d)/float64(res.LoadTime)))
	}
	fmt.Println(rt.String())

	if spark := asciichart.Sparkline(freqHist, 64); spark != "" {
		lo, hi := minMax(freqHist)
		fmt.Printf("freq MHz  %s  [%.0f..%.0f]\n", spark, lo, hi)
	}
	if spark := asciichart.Sparkline(tempHist, 64); spark != "" {
		lo, hi := minMax(tempHist)
		fmt.Printf("SoC degC  %s  [%.1f..%.1f]\n", spark, lo, hi)
	}
}

func minMax(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// writeFileWith streams an exposition function into a file.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildGovernor(dev dora.Device, name string, freq int, modelsPath string) (dora.Governor, time.Duration, *core.Models, error) {
	if freq > 0 {
		return dora.NewFixed(dev, freq), 20 * time.Millisecond, nil, nil
	}
	switch name {
	case "interactive":
		return dora.NewInteractive(), 20 * time.Millisecond, nil, nil
	case "performance":
		return dora.NewPerformance(), 20 * time.Millisecond, nil, nil
	case "powersave":
		return dora.NewPowersave(), 20 * time.Millisecond, nil, nil
	case "DORA", "DL", "EE", "DORA_no_lkg":
		models, err := loadModels(modelsPath)
		if err != nil {
			return nil, 0, nil, err
		}
		var g dora.Governor
		switch name {
		case "DORA":
			g, err = dora.NewDORA(models)
		case "DORA_no_lkg":
			g, err = dora.NewDORAWithoutLeakage(models)
		case "DL":
			g, err = dora.NewDeadlineOnly(models)
		case "EE":
			g, err = dora.NewEnergyOnly(models)
		}
		return g, 100 * time.Millisecond, models, err
	default:
		return nil, 0, nil, fmt.Errorf("unknown governor %q", name)
	}
}

func loadModels(path string) (*core.Models, error) {
	if path == "" {
		return nil, fmt.Errorf("model-based governors need -models (run doratrain first)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m core.Models
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

func orNone(s string) string {
	if s == "" {
		return "no co-runner"
	}
	return s
}
