// Command dorarepro regenerates every table and figure of the DORA
// paper's evaluation section as plain-text tables, using the simulated
// device and the trained models.
//
// Usage:
//
//	dorarepro                # everything, fast training grid
//	dorarepro -full          # full training grid (slower, paper scale)
//	dorarepro -fig 1,3,7     # only selected figures
//	dorarepro -fig headline  # just the summary numbers
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"dora"
	"dora/internal/obslog"
	"dora/internal/pool"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dorarepro: ")
	full := flag.Bool("full", false, "use the full paper-scale training campaign")
	seed := flag.Int64("seed", 1, "simulation seed")
	figs := flag.String("fig", "all", "comma-separated list: 1,2,3,table3,5,6,7,8,9,10,11,headline,overhead,interval,offlineopt,ablation-piecewise,ablation-replacement,complexity")
	workers := flag.Int("workers", 0, "measurement worker pool size (0 = one per CPU or $DORA_WORKERS, 1 = serial)")
	cachePath := flag.String("runcache", "", "persistent run cache file; warm caches skip already-simulated runs")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, logCloser, err := logFlags.Open("dorarepro")
	if err != nil {
		log.Fatal(err)
	}
	defer logCloser.Close()

	nworkers, err := pool.ResolveWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	var cache *dora.RunCache
	if *cachePath != "" {
		cache, err = dora.OpenRunCache(*cachePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run cache %s: %d entries\n", *cachePath, cache.Len())
	}

	fmt.Println("training models (simulated measurement campaign)...")
	logger.Info().Bool("full", *full).Int64("seed", *seed).Int("workers", nworkers).Msg("training campaign starting")
	suite, err := dora.NewSuiteOpts(dora.SuiteOptions{
		Device:  dora.DefaultDevice(),
		Seed:    *seed,
		Fast:    !*full,
		Workers: nworkers,
		Cache:   cache,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: load-time error %.2f%%, power error %.2f%% (paper: 2.5%% / 4.0%%)\n\n",
		suite.TrainReport.TimeMetrics.MAPE*100, suite.TrainReport.PowerMetrics.MAPE*100)

	type figure struct {
		key string
		run func() (interface{ Table() string }, error)
	}
	figures := []figure{
		{"1", func() (interface{ Table() string }, error) { return suite.Fig1() }},
		{"2", func() (interface{ Table() string }, error) { return suite.Fig2() }},
		{"3", func() (interface{ Table() string }, error) { return suite.Fig3() }},
		{"table3", func() (interface{ Table() string }, error) { return suite.TableIII() }},
		{"5", func() (interface{ Table() string }, error) { return suite.Fig5(), nil }},
		{"6", func() (interface{ Table() string }, error) { return suite.Fig6() }},
		{"7", func() (interface{ Table() string }, error) { return suite.Fig7() }},
		{"8", func() (interface{ Table() string }, error) { return suite.Fig8() }},
		{"9", func() (interface{ Table() string }, error) { return suite.Fig9() }},
		{"10", func() (interface{ Table() string }, error) { return suite.Fig10() }},
		{"11", func() (interface{ Table() string }, error) { return suite.Fig11() }},
		{"headline", func() (interface{ Table() string }, error) { return suite.Headline() }},
		{"overhead", func() (interface{ Table() string }, error) { return suite.Overhead() }},
		{"interval", func() (interface{ Table() string }, error) { return suite.IntervalStudy() }},
		{"offlineopt", func() (interface{ Table() string }, error) { return suite.OfflineOpt() }},
		{"ablation-piecewise", func() (interface{ Table() string }, error) { return suite.PiecewiseAblation() }},
		{"ablation-replacement", func() (interface{ Table() string }, error) { return suite.ReplacementAblation() }},
		{"complexity", func() (interface{ Table() string }, error) { return suite.ComplexitySweep() }},
	}
	for _, f := range figures {
		if !sel(f.key) {
			continue
		}
		logger.Debug().Str("figure", f.key).Msg("regenerating figure")
		res, err := f.run()
		if err != nil {
			logger.Error().Str("figure", f.key).Err(err).Msg("figure failed")
			log.Fatalf("figure %s: %v", f.key, err)
		}
		fmt.Println(res.Table())
	}

	if cache != nil {
		if err := cache.Save(); err != nil {
			log.Fatal(err)
		}
		hits, misses, stores := cache.Stats()
		fmt.Printf("run cache %s: %d hits, %d misses, %d new entries (now %d total)\n",
			cache.Path(), hits, misses, stores, cache.Len())
	}
}
