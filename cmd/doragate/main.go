// Command doragate fronts a sharded dorad cluster: a stateless
// gateway that routes each request key (device fingerprint +
// canonicalized run options) to one worker via rendezvous hashing, so
// every worker's run cache and in-flight dedup shard naturally with
// zero coordination. Campaign grids fan out across the whole cluster
// with per-cell re-route-and-retry on worker failure; index-derived
// seeds keep the aggregate byte-identical to a single node at any
// cluster width.
//
// Membership starts from the static -workers list and is refined by
// periodic /healthz probing: a worker failing -fail-threshold
// consecutive probes is evicted from placement, a succeeding probe
// rejoins it, and draining workers stop receiving new placements
// while they finish in-flight requests. Workers must all simulate the
// same device — the gateway learns the device fingerprint from the
// first probe (or takes -fingerprint) and evicts any worker reporting
// a different one.
//
// Endpoints: POST /v1/load and /v1/campaign (proxied, same bodies as
// dorad), GET /v1/pages (proxied), GET /v1/cluster (membership
// snapshot), GET /healthz (503 until a worker is live), GET /metrics.
//
// Usage:
//
//	doragate -workers http://w1:8077,http://w2:8077 [-addr :8070]
//	         [-transport json|stream] [-probe-interval 2s]
//	         [-probe-timeout 1s] [-fail-threshold 3]
//	         [-forward-timeout 0] [-fanout N] [-fidelity exact]
//	         [-log-level info,access=warn] [-log-file doragate.log]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dora/internal/cluster"
	"dora/internal/fidelity"
	"dora/internal/obslog"
	"dora/internal/serve"
	"dora/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doragate: ")
	addr := flag.String("addr", ":8070", "listen address")
	workers := flag.String("workers", "", "comma-separated dorad worker base URLs (required)")
	transport := flag.String("transport", cluster.TransportJSON, "worker transport: json (POST /v1/load) or stream (internal/wire)")
	fingerprint := flag.String("fingerprint", "", "expected device fingerprint (default: adopt from the first probe)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health probe cadence")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-worker probe deadline")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a worker is evicted")
	forwardTimeout := flag.Duration("forward-timeout", 0, "per-attempt forward deadline; a slow worker turns into a re-route (0 = request deadline only)")
	fanout := flag.Int("fanout", 0, "campaign cells forwarded concurrently (0 = one per CPU)")
	fidelityFlag := flag.String("fidelity", "exact", "default simulation fidelity for requests that omit the field: exact|sampled")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight proxied requests")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Parse()

	logger, logCloser, err := logFlags.Open("doragate")
	if err != nil {
		log.Fatal(err)
	}
	defer logCloser.Close()

	var members []cluster.Member
	for _, raw := range strings.Split(*workers, ",") {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		members = append(members, cluster.Member{URL: u})
	}
	if len(members) == 0 {
		log.Fatal("no workers: pass -workers http://host:8077[,...]")
	}

	fid, err := fidelity.ParseMode(*fidelityFlag)
	if err != nil {
		log.Fatal(err)
	}

	gw, err := cluster.NewGateway(cluster.Config{
		Members:         members,
		Transport:       *transport,
		Fingerprint:     *fingerprint,
		FailThreshold:   *failThreshold,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		ForwardTimeout:  *forwardTimeout,
		Fanout:          *fanout,
		DefaultFidelity: fid.String(),
		Metrics:         telemetry.NewRegistry(),
		Log:             logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	// Background membership loop: probe immediately, then on the
	// configured cadence until shutdown.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	go gw.Run(probeCtx)

	hs := serve.NewHTTPServer(*addr, gw.Handler())
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, transport=%s)", *addr, len(members), *transport)
	logger.Info().
		Str("addr", *addr).
		Int("workers", len(members)).
		Str("transport", *transport).
		Msg("listening")

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("%s: shutting down (up to %s)...", sig, *drainTimeout)
		logger.Info().Str("signal", sig.String()).Msg("shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	stopProbes()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v (forcing)", err)
		logger.Warn().Err(err).Msg("shutdown forced")
	}
	fmt.Println("doragate: stopped")
}
