// Command doralint runs the repository's static-analysis suite (see
// internal/lint): determinism, maporder, hotpath, and telemetrysafe,
// plus validation of //doralint:allow suppressions. It is pure
// standard library and needs no network.
//
// Usage:
//
//	doralint [-json] [-dir D] [packages]
//
// With no packages (or "./..."), the whole module containing -dir is
// analyzed. Package arguments select a subset by import path or
// module-relative directory; a trailing /... matches subtrees.
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// usage or load errors (parse failures, type errors).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dora/internal/lint"
	"dora/internal/obslog"
	"dora/internal/pool"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable report (LINT_REPORT.json shape) on stdout")
	dir := flag.String("dir", ".", "directory inside the module to analyze")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: doralint [-json] [-dir D] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	logger, logCloser, err := logFlags.Open("doralint")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}
	defer logCloser.Close()

	// Shared workers validation: doralint has no fan-out of its own, but
	// a malformed $DORA_WORKERS should fail loudly here too instead of
	// silently falling back in whatever command runs next.
	if _, err := pool.ResolveWorkers(0); err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		logger.Error().Err(err).Str("dir", *dir).Msg("module load failed")
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}
	if err := selectPackages(mod, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}

	analyzers := lint.Analyzers()
	logger.Debug().Int("packages", len(mod.Pkgs)).Int("analyzers", len(analyzers)).Msg("analysis starting")
	diags := lint.Run(mod, analyzers)
	logger.Info().Int("packages", len(mod.Pkgs)).Int("findings", len(diags)).Msg("analysis complete")

	if *jsonOut {
		rep := lint.NewReport(mod, analyzers, diags)
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "doralint:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "doralint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectPackages narrows mod.Pkgs to the requested patterns. "./..."
// (and no patterns at all) selects everything; other patterns match an
// import path or a module-relative directory, with /... selecting the
// subtree.
func selectPackages(mod *lint.Module, patterns []string) error {
	if len(patterns) == 0 {
		return nil
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." || pat == "all" {
			return nil
		}
		matched := false
		for _, pkg := range mod.Pkgs {
			if matchPackage(mod, pkg, pat) {
				keep[pkg.Path] = true
				matched = true
			}
		}
		if !matched {
			return fmt.Errorf("pattern %q matches no packages in module %s", pat, mod.Path)
		}
	}
	var pkgs []*lint.Package
	for _, pkg := range mod.Pkgs {
		if keep[pkg.Path] {
			pkgs = append(pkgs, pkg)
		}
	}
	mod.Pkgs = pkgs
	return nil
}

// matchPackage reports whether pkg matches one CLI pattern, given as
// an import path ("dora/internal/soc") or module-relative directory
// ("./internal/soc", "internal/soc").
func matchPackage(mod *lint.Module, pkg *lint.Package, pat string) bool {
	sub := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		pat, sub = rest, true
	}
	pat = filepath.ToSlash(strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/"))
	candidates := []string{pat}
	if pat == "" || pat == "." {
		candidates = []string{mod.Path}
	} else if pat != mod.Path && !strings.HasPrefix(pat, mod.Path+"/") {
		candidates = append(candidates, mod.Path+"/"+pat)
	}
	for _, c := range candidates {
		if pkg.Path == c || (sub && strings.HasPrefix(pkg.Path, c+"/")) {
			return true
		}
	}
	return false
}
