// Command doralint runs the repository's static-analysis suite (see
// internal/lint): the per-package rules (determinism, maporder,
// hotpath, telemetrysafe), the call-graph rules (chanclose, goroleak,
// locksafe, detflow), and validation of //doralint:allow suppressions.
// It is pure standard library and needs no network.
//
// Usage:
//
//	doralint [-json] [-dir D] [-rule R[,R...]] [-pkg P[,P...]] [packages]
//
// With no packages (or "./..."), the whole module containing -dir is
// analyzed. Package arguments — positional or via -pkg — select where
// findings are reported by import path or module-relative directory; a
// trailing /... matches subtrees. The module is always loaded and the
// call graph always built in full, so package selection scopes the
// report, never the analysis. -rule runs a subset of the rules, which
// with -pkg makes the interprocedural rules usable as a fast
// pre-commit check (e.g. -rule chanclose,goroleak -pkg internal/serve).
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on
// usage or load errors (parse failures, type errors).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dora/internal/lint"
	"dora/internal/obslog"
	"dora/internal/pool"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable report (LINT_REPORT.json shape) on stdout")
	dir := flag.String("dir", ".", "directory inside the module to analyze")
	ruleFlag := flag.String("rule", "", "comma-separated subset of rules to run (default: all)")
	pkgFlag := flag.String("pkg", "", "comma-separated package patterns to report on (the whole module is still analyzed)")
	logFlags := obslog.RegisterFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: doralint [-json] [-dir D] [-rule R[,R...]] [-pkg P[,P...]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	logger, logCloser, err := logFlags.Open("doralint")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}
	defer logCloser.Close()

	// Shared workers validation: doralint has no fan-out of its own, but
	// a malformed $DORA_WORKERS should fail loudly here too instead of
	// silently falling back in whatever command runs next.
	if _, err := pool.ResolveWorkers(0); err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}

	analyzers, err := selectRules(*ruleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		logger.Error().Err(err).Str("dir", *dir).Msg("module load failed")
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	for _, p := range strings.Split(*pkgFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			patterns = append(patterns, p)
		}
	}
	if err := mod.Select(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "doralint:", err)
		os.Exit(2)
	}

	logger.Debug().Int("packages", len(mod.Pkgs)).Int("analyzers", len(analyzers)).Msg("analysis starting")
	diags := lint.Run(mod, analyzers)
	logger.Info().Int("packages", len(mod.Pkgs)).Int("findings", len(diags)).Msg("analysis complete")

	if *jsonOut {
		rep := lint.NewReport(mod, analyzers, diags)
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "doralint:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "doralint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectRules resolves the -rule flag to a subset of the registered
// analyzers, preserving suite order. An empty flag means all.
func selectRules(ruleFlag string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if ruleFlag == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, r := range strings.Split(ruleFlag, ",") {
		if r = strings.TrimSpace(r); r != "" {
			want[r] = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown, known []string
		for r := range want {
			unknown = append(unknown, r)
		}
		sort.Strings(unknown)
		for _, a := range all {
			known = append(known, a.Name)
		}
		return nil, fmt.Errorf("unknown rule(s) %s (known: %s; the \"allow\" meta-rule always runs)",
			strings.Join(unknown, ", "), strings.Join(known, ", "))
	}
	if len(out) == 0 {
		return all, nil
	}
	return out, nil
}
